//! The serving runtime: bounded admission, a worker pool, cooperative
//! cancellation, and per-algorithm degradation tiers.
//!
//! # Request lifecycle
//!
//! [`Service::submit`] is the synchronous admission decision. Under the
//! service lock it either rejects the request with a typed
//! [`ServiceError::Rejected`] (queue at capacity, tenant over its in-flight
//! limit — with an exponential-backoff `retry_after` hint that doubles per
//! consecutive rejection of the same tenant) or enqueues it and returns a
//! [`Ticket`]. Admitted requests are never silently dropped: every ticket
//! resolves exactly once, to a certified [`Response`] or a typed
//! [`ServiceError`]. The [`ServiceStats`] resolution invariant
//! (`submitted == completed + sheds + cancelled + … + panics_isolated`)
//! is checked by the chaos suite.
//!
//! # Sharded queues
//!
//! Admission is tenant-sharded: [`ServiceConfig::shards`] per-shard queues,
//! a tenant hashing (FNV-1a) to one shard so a noisy tenant fills its own
//! lane. `queue_capacity` bounds each shard's queue; workers and
//! [`Service::drain`] pop shards round-robin through a shared cursor, so
//! no lane starves. With the default `shards: 1` the behavior is exactly
//! the single-queue runtime.
//!
//! # Execution
//!
//! Workers pop jobs and run them *outside* the lock. Each job gets its own
//! [`Machine`] (seeded from the request, chaos plan installed if any) with
//! the ticket's [`CancelToken`] attached, so the simulator aborts
//! cooperatively at the next step boundary once the deadline passes or the
//! client cancels. The run is wrapped in `catch_unwind`: a panic is
//! isolated to its request and surfaced as a typed [`RunError::Panic`].
//!
//! # Batch admission
//!
//! With [`ServiceConfig::batch_window`] enabled, a worker popping a small
//! 2-D request scans up to `batch_window` queue entries behind it and
//! coalesces same-algorithm, chaos-free requests of at most
//! [`ServiceConfig::batch_point_cap`] points (up to
//! [`ServiceConfig::batch_max`] members) into **one fused machine run**:
//! concatenated SoA input plus an offset table
//! ([`ipch_geom::batch::ConcatPoints2`]), a constant number of fused
//! steps for the whole batch
//! ([`ipch_hull2d::parallel::batch::upper_hulls_batch`]), and a
//! per-member certificate. Every member still resolves individually —
//! its own cancellation/deadline check, its own typed errors, its own
//! ledger line — so one member aborting or failing never poisons its
//! siblings: a member whose certificate (or the whole batch machine)
//! fails is demoted to an ordinary solo run at its planned tier. Only
//! requests planned at [`Tier::Full`] (and not half-open probes) fuse;
//! a degraded breaker naturally disables batching for its algorithm.
//! Because a certified upper hull is unique, fused results are
//! bit-identical to what the same requests produce unbatched.
//!
//! # Shard-split of large requests
//!
//! A request of at least [`ServiceConfig::split_threshold`] points (at a
//! supervised tier) is partitioned across [`ServiceConfig::shards`] shard
//! workers, each computing a certified partial hull on its own child
//! machine with the data-parallel kernel backend; the partials merge via
//! the paper's hull-of-hulls path and the stitched result must pass the
//! whole-input certificate ([`ipch_hull2d::parallel::sharded`],
//! [`ipch_hull3d::parallel::sharded`]). Merge failures demote to an
//! unsharded run and count in `ServiceStats::shard_merge_failures`.
//!
//! # Degradation
//!
//! A per-algorithm [`Breaker`] picks the [`Tier`] before dispatch and is
//! fed a [`Signal`] after: consecutive strained results (retries,
//! fallbacks, errors, panics) trip it a tier down — full supervision →
//! single-attempt supervision → direct sequential exact hull — and
//! half-open probes climb it back up once the strain clears.
//!
//! With `workers: 0` nothing runs until [`Service::drain`] processes the
//! queue on the calling thread — the deterministic mode the unit and chaos
//! tests use.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use ipch_geom::batch::ConcatPoints2;
use ipch_geom::validate::{validate_points2, validate_points3};
use ipch_hull2d::parallel::batch::upper_hulls_batch;
use ipch_hull2d::parallel::sharded::upper_hull_sharded_supervised;
use ipch_hull2d::parallel::supervised::{
    upper_hull_dac_supervised, upper_hull_unsorted_supervised,
};
use ipch_hull2d::parallel::unsorted::UnsortedParams;
use ipch_hull2d::seq::{monotone, SeqStats};
use ipch_hull2d::verify_upper_hull;
use ipch_hull3d::parallel::sharded::upper_hull3_sharded_supervised;
use ipch_hull3d::parallel::supervised::upper_hull3_unsorted_supervised;
use ipch_hull3d::parallel::unsorted3d::Unsorted3Params;
use ipch_hull3d::seq::giftwrap::upper_hull3_giftwrap;
use ipch_hull3d::seq::Seq3Stats;
use ipch_hull3d::verify_upper_hull3;
use ipch_pram::batch::batch_machine;
use ipch_pram::{
    silence_cancel_unwinds, CancelCause, CancelToken, CancelUnwind, Machine, Metrics, Outcome,
    RunError, ServiceStats, Shm, SuperviseConfig, Tuning,
};

use crate::breaker::{Breaker, BreakerConfig, Plan, Signal, Tier};
use crate::error::{RejectReason, ServiceError};
use crate::request::{Hull2dAlgo, Request, Response, ResponseValue, Workload};

/// Service knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads. `0` runs nothing until [`Service::drain`] — the
    /// deterministic single-threaded mode tests use.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Per-tenant in-flight (queued + running) limit.
    pub per_tenant_inflight: usize,
    /// Supervisor attempt budget at [`Tier::Full`] ([`Tier::ReducedRetry`]
    /// always uses 1).
    pub max_attempts: u32,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Circuit-breaker thresholds (shared by every algorithm's breaker).
    pub breaker: BreakerConfig,
    /// First `retry_after` hint; doubles per consecutive rejection.
    pub retry_after_base: Duration,
    /// Ceiling for the `retry_after` hint.
    pub retry_after_cap: Duration,
    /// Simulator tuning installed on every request's machine (kernel
    /// backend, dispatch threshold, lane cap). The default picks up the
    /// `IPCH_KERNEL_BACKEND` / `IPCH_KERNEL_PAR_THRESHOLD` env overrides,
    /// and the pool itself honors `IPCH_THREADS`.
    pub tuning: Tuning,
    /// Shard count: per-shard queues with tenant→shard affinity hashing,
    /// and the worker fan-out of split large requests.
    /// `queue_capacity` is **per shard**. The default `1` reproduces the
    /// single-queue runtime exactly.
    pub shards: usize,
    /// Batch-coalescing lookahead: how many queue entries behind a popped
    /// small 2-D request are scanned for fusable siblings. `0` (the
    /// default) disables batching entirely.
    pub batch_window: usize,
    /// Maximum members in one fused batch (including the popped request).
    pub batch_max: usize,
    /// Only requests of at most this many points are batch-eligible
    /// (batching exists to amortize per-step cost over *small* requests;
    /// big ones do enough work per step already).
    pub batch_point_cap: usize,
    /// Requests of at least this many points are shard-split across
    /// `shards` workers at supervised tiers. `None` (the default)
    /// disables splitting.
    pub split_threshold: Option<usize>,
    /// Run the symbolic plan checker ([`ipch_pram::verify`]) on the
    /// workload's algorithm plan at admission, rejecting requests whose
    /// plan fails its static proof (a `plan_*` [`RunError`] code). Plans
    /// that merely fall back to dynamic analysis still admit.
    pub precheck_plans: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            per_tenant_inflight: 8,
            max_attempts: 3,
            default_deadline: None,
            breaker: BreakerConfig::default(),
            retry_after_base: Duration::from_millis(10),
            retry_after_cap: Duration::from_secs(1),
            tuning: Tuning::default(),
            shards: 1,
            batch_window: 0,
            batch_max: 8,
            batch_point_cap: 96,
            split_threshold: None,
            precheck_plans: true,
        }
    }
}

/// The symbolic plan registered for a served algorithm, if any. Plans are
/// pure data; one copy per process serves every admission precheck.
fn plan_for(algorithm: &str) -> Option<&'static ipch_pram::verify::AlgorithmPlan> {
    use std::sync::OnceLock;
    static PLANS: OnceLock<Vec<ipch_pram::verify::AlgorithmPlan>> = OnceLock::new();
    PLANS
        .get_or_init(|| {
            let mut v = ipch_hull2d::parallel::verify_plans::verify_plans();
            v.extend(ipch_hull3d::parallel::verify_plans());
            v
        })
        .iter()
        .find(|p| p.contract.algorithm == algorithm)
}

/// Statically check one plan at the request's size. `Ok` covers both the
/// full static proof and the honest dynamic fallback — only a failed
/// proof (out-of-bounds plan, contract violation, unprovable shape with
/// fallback disabled) rejects.
fn precheck_plan(plan: &ipch_pram::verify::AlgorithmPlan, n: usize) -> Result<(), RunError> {
    ipch_pram::verify::verify(plan, n, &ipch_pram::verify::VerifyConfig::default())
        .map(|_| ())
        .map_err(|verify| RunError::PlanRejected { verify })
}

/// Tenant→shard affinity: FNV-1a over the tenant name, modulo the shard
/// count. Stable across restarts, so a tenant's traffic always lands on
/// the same lane.
fn shard_of(tenant: &str, shards: usize) -> usize {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % shards.max(1) as u64) as usize
}

/// An admitted request waiting in (or popped from) the queue.
struct Job {
    req: Request,
    token: CancelToken,
    tx: mpsc::Sender<Result<Response, ServiceError>>,
}

/// Everything the lock protects.
struct Inner {
    /// One bounded queue per shard; a tenant's requests always land on
    /// `shard_of(tenant)`.
    queues: Vec<VecDeque<Job>>,
    /// Round-robin pop cursor shared by all workers (no lane starves).
    next_shard: usize,
    /// Queued + running requests per tenant.
    tenant_load: HashMap<String, usize>,
    /// Consecutive rejections per tenant (drives the backoff hint).
    reject_streak: HashMap<String, u32>,
    /// One breaker per algorithm name, created on first dispatch.
    breakers: HashMap<&'static str, Breaker>,
    /// Service-wide aggregate: every request machine's metrics are
    /// absorbed here, and `metrics.service` carries the runtime counters.
    metrics: Metrics,
    /// Requests currently executing (popped, not yet resolved).
    in_flight: usize,
    shutdown: bool,
}

struct Shared {
    cfg: ServiceConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// Handle for one submitted request. Resolves exactly once via
/// [`Ticket::wait`]; [`Ticket::cancel`] requests cooperative cancellation
/// (honored at the next PRAM step boundary if the job is already running).
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServiceError>>,
    token: CancelToken,
}

impl Ticket {
    /// Ask the service to abandon this request. Queued → resolved as
    /// cancelled without running; running → the machine aborts at the next
    /// step boundary with [`RunError::Cancelled`].
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// The request's cancellation token (shared with its machine).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Block until the request resolves. A dropped service that never ran
    /// the job surfaces as [`ServiceError::ShuttingDown`].
    pub fn wait(self) -> Result<Response, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShuttingDown))
    }

    /// Non-blocking poll; `None` while the request is still pending.
    pub fn try_wait(&self) -> Option<Result<Response, ServiceError>> {
        self.rx.try_recv().ok()
    }
}

/// Point-in-time view of one algorithm's breaker, for [`Health`].
#[derive(Clone, Copy, Debug)]
pub struct BreakerView {
    /// Algorithm name (the breaker key).
    pub algorithm: &'static str,
    /// Current degradation tier.
    pub tier: Tier,
    /// Consecutive strained results at that tier.
    pub strain_streak: u32,
    /// A half-open probe is in flight.
    pub probing: bool,
}

/// `/health`-style snapshot of the runtime.
#[derive(Clone, Debug)]
pub struct Health {
    /// Requests waiting across all shard queues.
    pub queue_depth: usize,
    /// Per-shard queue depths (`queue_depth` is their sum).
    pub shard_depths: Vec<usize>,
    /// Requests currently executing.
    pub in_flight: usize,
    /// The service no longer admits requests.
    pub shutting_down: bool,
    /// Every algorithm breaker seen so far (sorted by name).
    pub breakers: Vec<BreakerView>,
    /// The runtime counters.
    pub stats: ServiceStats,
}

impl Health {
    /// Plain-text rendering (what `hulld` prints for `/health`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "queue_depth={} in_flight={} shutting_down={}",
            self.queue_depth, self.in_flight, self.shutting_down
        );
        for b in &self.breakers {
            let _ = writeln!(
                s,
                "breaker {}: tier={:?} strain_streak={} probing={}",
                b.algorithm, b.tier, b.strain_streak, b.probing
            );
        }
        let st = &self.stats;
        let _ = writeln!(
            s,
            "submitted={} admitted={} completed={} shed={} static_rejects={} \
             cancelled={} deadline_exceeded={} invalid_inputs={} run_errors={} \
             panics_isolated={}",
            st.submitted,
            st.admitted,
            st.completed,
            st.total_shed(),
            st.static_rejects,
            st.cancelled,
            st.deadline_exceeded,
            st.invalid_inputs,
            st.run_errors,
            st.panics_isolated,
        );
        let _ = writeln!(
            s,
            "breaker_trips={} breaker_probes={} breaker_recoveries={} \
             degraded_tier1={} degraded_tier2={}",
            st.breaker_trips,
            st.breaker_probes,
            st.breaker_recoveries,
            st.degraded_tier1_runs,
            st.degraded_tier2_runs,
        );
        let mean_batch = if st.batches_formed > 0 {
            st.batch_members as f64 / st.batches_formed as f64
        } else {
            0.0
        };
        let _ = writeln!(
            s,
            "shards={} shard_depths={:?} batches_formed={} batch_members={} \
             mean_batch_size={mean_batch:.2} shard_splits={} shard_merge_failures={}",
            self.shard_depths.len(),
            self.shard_depths,
            st.batches_formed,
            st.batch_members,
            st.shard_splits,
            st.shard_merge_failures,
        );
        s
    }
}

/// The resilient hull-serving runtime. See the module docs for the
/// lifecycle; construct with [`Service::new`], submit with
/// [`Service::submit`], stop with [`Service::shutdown`] (or just drop it —
/// workers are joined either way).
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// A poisoned service lock means a worker panicked *while holding it* —
/// impossible by construction (requests run outside the lock and the
/// bookkeeping inside it doesn't panic), but recover rather than cascade.
fn lock(shared: &Shared) -> MutexGuard<'_, Inner> {
    shared.inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl Service {
    /// Start the runtime with `cfg.workers` worker threads.
    pub fn new(cfg: ServiceConfig) -> Self {
        // Cancellation unwinds are routine control flow here; keep the
        // default panic hook from spamming stderr for each one.
        silence_cancel_unwinds();
        let nshards = cfg.shards.max(1);
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queues: (0..nshards).map(|_| VecDeque::new()).collect(),
                next_shard: 0,
                tenant_load: HashMap::new(),
                reject_streak: HashMap::new(),
                breakers: HashMap::new(),
                metrics: Metrics::new(),
                in_flight: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            cfg,
        });
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hulld-worker-{i}"))
                    // xlint: allow(unwrap): fail-fast at service start — a
                    // host that cannot spawn workers cannot serve at all.
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn service worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Synchronous admission. Returns a [`Ticket`] for an admitted request
    /// or the typed shed decision; never blocks on capacity.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServiceError> {
        let cfg = &self.shared.cfg;
        let mut guard = lock(&self.shared);
        let inner = &mut *guard;
        if inner.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        inner.metrics.service.submitted += 1;
        // Static admission precheck: a request whose algorithm plan fails
        // its symbolic proof never reaches the queue — the failure is a
        // terminal plan defect, not load, so no backoff hint is issued.
        if cfg.precheck_plans {
            if let Some(plan) = plan_for(req.workload.algorithm()) {
                if let Err(e) = precheck_plan(plan, req.workload.len()) {
                    inner.metrics.service.static_rejects += 1;
                    return Err(ServiceError::Run(e));
                }
            }
        }
        // Capacity is per shard: a tenant is shed when *its* lane is full,
        // not when some other tenant's lane is.
        let shard = shard_of(&req.tenant, inner.queues.len());
        if inner.queues[shard].len() >= cfg.queue_capacity {
            inner.metrics.service.rejected_queue_full += 1;
            let retry_after = bump_backoff(cfg, inner, &req.tenant);
            return Err(ServiceError::Rejected {
                reason: RejectReason::QueueFull {
                    depth: inner.queues[shard].len(),
                },
                retry_after,
            });
        }
        let load = inner.tenant_load.get(&req.tenant).copied().unwrap_or(0);
        if load >= cfg.per_tenant_inflight {
            inner.metrics.service.rejected_tenant_limit += 1;
            let retry_after = bump_backoff(cfg, inner, &req.tenant);
            return Err(ServiceError::Rejected {
                reason: RejectReason::TenantLimit { in_flight: load },
                retry_after,
            });
        }
        inner.metrics.service.admitted += 1;
        inner.reject_streak.remove(&req.tenant);
        *inner.tenant_load.entry(req.tenant.clone()).or_insert(0) += 1;
        let token = match req.deadline.or(cfg.default_deadline) {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let (tx, rx) = mpsc::channel();
        inner.queues[shard].push_back(Job {
            req,
            token: token.clone(),
            tx,
        });
        drop(guard);
        self.shared.cv.notify_one();
        Ok(Ticket { rx, token })
    }

    /// Process queued jobs on the calling thread until every shard queue
    /// is empty. This is how a `workers: 0` service runs at all, and it's
    /// safe alongside live workers (each job is popped exactly once).
    pub fn drain(&self) {
        loop {
            let work = pop_work(&self.shared.cfg, &mut lock(&self.shared));
            match work {
                Some(jobs) => handle_many(&self.shared, jobs),
                None => return,
            }
        }
    }

    /// Snapshot the runtime state.
    pub fn health(&self) -> Health {
        let inner = lock(&self.shared);
        let mut breakers: Vec<BreakerView> = inner
            .breakers
            .iter()
            .map(|(&algorithm, b)| BreakerView {
                algorithm,
                tier: b.tier(),
                strain_streak: b.strain_streak(),
                probing: b.probing(),
            })
            .collect();
        breakers.sort_by_key(|b| b.algorithm);
        Health {
            queue_depth: inner.queues.iter().map(|q| q.len()).sum(),
            shard_depths: inner.queues.iter().map(|q| q.len()).collect(),
            in_flight: inner.in_flight,
            shutting_down: inner.shutdown,
            breakers,
            stats: inner.metrics.service,
        }
    }

    /// Clone of the service-wide aggregate metrics (simulator counters of
    /// every absorbed request machine plus the `service` block).
    pub fn metrics(&self) -> Metrics {
        lock(&self.shared).metrics.clone()
    }

    /// Graceful stop: runs the remaining queue to completion (on this
    /// thread and any live workers), joins the workers, and returns the
    /// final aggregate metrics. New submissions fail with
    /// [`ServiceError::ShuttingDown`].
    pub fn shutdown(mut self) -> Metrics {
        self.drain();
        self.stop_workers();
        let m = lock(&self.shared).metrics.clone();
        m
    }

    fn stop_workers(&mut self) {
        lock(&self.shared).shutdown = true;
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Increment `tenant`'s rejection streak and return the doubled backoff
/// hint (base · 2^(streak − 1), capped).
fn bump_backoff(cfg: &ServiceConfig, inner: &mut Inner, tenant: &str) -> Duration {
    let streak = inner
        .reject_streak
        .entry(tenant.to_owned())
        .and_modify(|s| *s = s.saturating_add(1))
        .or_insert(1);
    let exp = streak.saturating_sub(1).min(20);
    cfg.retry_after_base
        .saturating_mul(1u32 << exp)
        .min(cfg.retry_after_cap)
}

fn worker_loop(shared: &Shared) {
    loop {
        let jobs = {
            let mut inner = lock(shared);
            loop {
                if let Some(jobs) = pop_work(&shared.cfg, &mut inner) {
                    break jobs;
                }
                if inner.shutdown {
                    return;
                }
                inner = shared.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        };
        handle_many(shared, jobs);
    }
}

/// True when a request may join a fused batch: a 2-D workload small enough
/// that per-step overhead dominates, with no chaos plan (fault injection
/// is per-request state the shared batch machine cannot isolate).
fn batch_eligible(cfg: &ServiceConfig, req: &Request) -> bool {
    req.chaos.is_none()
        && matches!(
            &req.workload,
            Workload::Hull2d { points, .. } if points.len() <= cfg.batch_point_cap
        )
}

/// Pop the next unit of work: the front job of the next non-empty shard
/// (round-robin from the shared cursor), plus — when batching is on and
/// the job is eligible — up to `batch_max − 1` fusable same-algorithm
/// siblings from the first `batch_window` entries behind it. Ineligible
/// entries keep their queue positions.
fn pop_work(cfg: &ServiceConfig, inner: &mut Inner) -> Option<Vec<Job>> {
    let ns = inner.queues.len();
    let shard = (0..ns)
        .map(|i| (inner.next_shard + i) % ns)
        .find(|&s| !inner.queues[s].is_empty())?;
    inner.next_shard = (shard + 1) % ns;
    let q = &mut inner.queues[shard];
    let first = q.pop_front()?;
    if cfg.batch_window == 0 || cfg.batch_max <= 1 || !batch_eligible(cfg, &first.req) {
        return Some(vec![first]);
    }
    let key = first.req.workload.algorithm();
    let mut batch = vec![first];
    let mut idx = 0;
    let mut scanned = 0;
    while idx < q.len() && scanned < cfg.batch_window && batch.len() < cfg.batch_max {
        scanned += 1;
        let r = &q[idx].req;
        if r.workload.algorithm() == key && batch_eligible(cfg, r) {
            // xlint: allow(unwrap): `idx < q.len()` is the loop guard
            batch.push(q.remove(idx).expect("index in bounds"));
        } else {
            idx += 1;
        }
    }
    Some(batch)
}

/// Dispatch one popped unit of work: a lone job goes down the classic
/// path, a coalesced batch through the fused path.
fn handle_many(shared: &Shared, mut jobs: Vec<Job>) {
    if jobs.len() > 1 {
        return handle_batch(shared, jobs);
    }
    if let Some(job) = jobs.pop() {
        handle(shared, job);
    }
}

fn finish_tenant(inner: &mut Inner, tenant: &str) {
    if let Some(load) = inner.tenant_load.get_mut(tenant) {
        *load -= 1;
        if *load == 0 {
            inner.tenant_load.remove(tenant);
        }
    }
}

/// What one executed request hands back: its machine's metrics (absorbed
/// into the aggregate whether it succeeded or not) and the outcome.
type RunReturn = (Metrics, Result<Response, RunError>);

fn handle(shared: &Shared, job: Job) {
    handle_with(shared, job, run_request)
}

/// The resolution path, parameterized over the runner so tests can drive
/// the isolation machinery with a panicking or unwinding body.
fn handle_with(
    shared: &Shared,
    job: Job,
    runner: impl FnOnce(&ServiceConfig, &Request, Tier, CancelToken) -> RunReturn,
) {
    let Job { req, token, tx } = job;
    let alg = req.workload.algorithm();

    // Resolve without running if the request died while queued: an expired
    // deadline is load shedding (typed, with a retry hint), an explicit
    // cancel is the client's own typed abort.
    if let Err(cause) = token.check() {
        let mut guard = lock(shared);
        let inner = &mut *guard;
        finish_tenant(inner, &req.tenant);
        let err = match cause {
            CancelCause::DeadlineExceeded => {
                inner.metrics.service.shed_expired += 1;
                ServiceError::Rejected {
                    reason: RejectReason::Expired,
                    retry_after: shared.cfg.retry_after_base,
                }
            }
            CancelCause::Cancelled => {
                inner.metrics.service.cancelled += 1;
                ServiceError::Run(RunError::Cancelled { algorithm: alg })
            }
        };
        drop(guard);
        let _ = tx.send(Err(err));
        return;
    }

    // Let the algorithm's breaker pick the tier (possibly a half-open
    // probe above it).
    let plan: Plan = {
        let mut guard = lock(shared);
        let inner = &mut *guard;
        inner.in_flight += 1;
        let br = inner
            .breakers
            .entry(alg)
            .or_insert_with(|| Breaker::new(shared.cfg.breaker));
        br.plan(&mut inner.metrics.service)
    };

    // Run outside the lock, panic-isolated to this request.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        runner(&shared.cfg, &req, plan.tier, token.clone())
    }));

    let mut guard = lock(shared);
    let inner = &mut *guard;
    inner.in_flight -= 1;
    finish_tenant(inner, &req.tenant);
    let (signal, result) = resolve_run(inner, alg, plan.tier, caught);
    let svc = &mut inner.metrics.service;
    if let Some(br) = inner.breakers.get_mut(alg) {
        br.report(plan, signal, svc);
    }
    drop(guard);
    let _ = tx.send(result);
}

/// Resolve one executed request under the lock: absorb its machine's
/// metrics, bump the matching ledger counter exactly once, and map the
/// outcome to the breaker signal. Shared by the solo path
/// ([`handle_with`]) and every batch member that ran (or was demoted to)
/// its own machine.
fn resolve_run(
    inner: &mut Inner,
    alg: &'static str,
    tier: Tier,
    caught: std::thread::Result<RunReturn>,
) -> (Signal, Result<Response, ServiceError>) {
    match caught {
        Ok((metrics, outcome)) => {
            inner.metrics.absorb(&metrics);
            match outcome {
                Ok(resp) => {
                    inner.metrics.service.completed += 1;
                    match tier {
                        Tier::Full => {}
                        Tier::ReducedRetry => inner.metrics.service.degraded_tier1_runs += 1,
                        Tier::Sequential => inner.metrics.service.degraded_tier2_runs += 1,
                    }
                    let signal = match resp.outcome {
                        // A clean sequential run (no supervisor) also
                        // counts as healthy: the probe path relies on it.
                        Some(Outcome::FirstTry) | None => Signal::Clean,
                        Some(Outcome::Retried(_)) | Some(Outcome::FellBack) => Signal::Strained,
                    };
                    (signal, Ok(resp))
                }
                Err(e) => {
                    let signal = match &e {
                        RunError::Cancelled { .. } => {
                            inner.metrics.service.cancelled += 1;
                            Signal::Neutral
                        }
                        RunError::DeadlineExceeded { .. } => {
                            inner.metrics.service.deadline_exceeded += 1;
                            Signal::Neutral
                        }
                        RunError::InvalidInput { .. } => {
                            inner.metrics.service.invalid_inputs += 1;
                            Signal::Neutral
                        }
                        _ => {
                            inner.metrics.service.run_errors += 1;
                            Signal::Strained
                        }
                    };
                    (signal, Err(ServiceError::Run(e)))
                }
            }
        }
        Err(payload) => {
            // Defence in depth: a cancellation unwind that escaped the
            // supervisor (e.g. a machine poll outside any supervised
            // scope) is still typed, not an isolated panic.
            if let Some(cu) = payload.downcast_ref::<CancelUnwind>() {
                match cu.cause {
                    CancelCause::Cancelled => inner.metrics.service.cancelled += 1,
                    CancelCause::DeadlineExceeded => inner.metrics.service.deadline_exceeded += 1,
                }
                (
                    Signal::Neutral,
                    Err(ServiceError::Run(RunError::from_cancel(alg, cu.cause))),
                )
            } else {
                inner.metrics.service.panics_isolated += 1;
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                (
                    Signal::Strained,
                    Err(ServiceError::Run(RunError::Panic {
                        algorithm: alg,
                        detail,
                    })),
                )
            }
        }
    }
}

/// The fused batch path: one coalesced group of small same-algorithm 2-D
/// requests through one shared machine run, every member still resolved
/// individually.
///
/// Three phases. **A** (lock): count the batch, resolve members whose
/// token already fired (identical to the solo queued-death path), charge
/// in-flight and plan each survivor's tier. **B** (no lock): members
/// planned at `Full` (and not probes) run fused —
/// [`upper_hulls_batch`] on a [`batch_machine`] seeded from the member
/// seeds; everyone else, plus any member whose fused certificate failed
/// (or all members, if the shared machine panicked), runs an ordinary
/// panic-isolated solo machine at its planned tier. **C** (lock): resolve
/// every member exactly once — fused completions absorb the batch metrics
/// a single time and report `Clean`; terminal fused errors
/// (cancel/deadline/invalid) resolve typed and `Neutral`; solo members go
/// through the same [`resolve_run`] as the classic path. The resolution
/// invariant (`submitted == total_resolved`) holds member-by-member.
fn handle_batch(shared: &Shared, jobs: Vec<Job>) {
    type Send = (
        mpsc::Sender<Result<Response, ServiceError>>,
        Result<Response, ServiceError>,
    );

    // Phase A: admission bookkeeping under one lock round.
    let mut live: Vec<(Job, Plan)> = Vec::with_capacity(jobs.len());
    let mut early: Vec<Send> = Vec::new();
    {
        let mut guard = lock(shared);
        let inner = &mut *guard;
        for job in jobs {
            let alg = job.req.workload.algorithm();
            if let Err(cause) = job.token.check() {
                finish_tenant(inner, &job.req.tenant);
                let err = match cause {
                    CancelCause::DeadlineExceeded => {
                        inner.metrics.service.shed_expired += 1;
                        ServiceError::Rejected {
                            reason: RejectReason::Expired,
                            retry_after: shared.cfg.retry_after_base,
                        }
                    }
                    CancelCause::Cancelled => {
                        inner.metrics.service.cancelled += 1;
                        ServiceError::Run(RunError::Cancelled { algorithm: alg })
                    }
                };
                early.push((job.tx, Err(err)));
                continue;
            }
            inner.in_flight += 1;
            let br = inner
                .breakers
                .entry(alg)
                .or_insert_with(|| Breaker::new(shared.cfg.breaker));
            let plan = br.plan(&mut inner.metrics.service);
            live.push((job, plan));
        }
    }
    for (tx, r) in early {
        let _ = tx.send(r);
    }

    // Only healthy Full-tier members fuse; probes and degraded tiers keep
    // their own machines so the breaker's feedback stays honest. A
    // "batch" of one is just a solo run.
    type PlannedJobs = Vec<(Job, Plan)>;
    let (mut fused, mut solo): (PlannedJobs, PlannedJobs) = live
        .into_iter()
        .partition(|(_, plan)| plan.tier == Tier::Full && !plan.probe);
    if fused.len() == 1 {
        solo.append(&mut fused);
    }
    let fused_count = fused.len();

    // Phase B: the fused run, outside the lock.
    let mut fused_done: Vec<(Job, Plan, Response)> = Vec::new();
    let mut fused_dead: Vec<(Job, Plan, RunError)> = Vec::new();
    let mut batch_metrics: Option<Metrics> = None;
    if !fused.is_empty() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let slices: Vec<&[ipch_geom::Point2]> = fused
                .iter()
                .map(|(j, _)| match &j.req.workload {
                    Workload::Hull2d { points, .. } => points.as_slice(),
                    Workload::Hull3d { .. } => {
                        unreachable!("batch_eligible admits only 2-D workloads")
                    }
                })
                .collect();
            let cat = ConcatPoints2::from_members(&slices);
            let mut bm = batch_machine(fused.iter().map(|(j, _)| j.req.seed), shared.cfg.tuning);
            let mut shm = Shm::new();
            let results = upper_hulls_batch(&mut bm, &mut shm, &cat);
            (bm.metrics, results)
        }));
        match caught {
            Ok((metrics, results)) => {
                let steps = metrics.steps;
                batch_metrics = Some(metrics);
                for ((job, plan), result) in fused.drain(..).zip(results) {
                    // Per-member deadline/cancel, checked at the batch
                    // boundary: the shared machine carries no token, so one
                    // member's abort cannot poison its siblings.
                    if let Err(cause) = job.token.check() {
                        let alg = job.req.workload.algorithm();
                        fused_dead.push((job, plan, RunError::from_cancel(alg, cause)));
                        continue;
                    }
                    match result {
                        Ok(hull) => fused_done.push((
                            job,
                            plan,
                            Response {
                                value: ResponseValue::Hull2d(hull),
                                tier: Tier::Full,
                                outcome: Some(Outcome::FirstTry),
                                attempts: 1,
                                sim_steps: steps,
                            },
                        )),
                        Err(e @ RunError::InvalidInput { .. }) => {
                            fused_dead.push((job, plan, e));
                        }
                        // The certificate refused this member's fused
                        // chain: demote it to a solo supervised run;
                        // siblings keep their fused results.
                        Err(_) => solo.push((job, plan)),
                    }
                }
            }
            Err(_) => {
                // The shared machine blew up. No member is charged a
                // panic for a sibling's poison: everyone re-runs alone
                // (a solo panic is then isolated to its own request).
                solo.append(&mut fused);
            }
        }
    }

    // Solo members (degraded/probe plans, demotions, or the whole batch
    // after a shared-machine panic) each run their own machine.
    let solo_runs: Vec<(Job, Plan, std::thread::Result<RunReturn>)> = solo
        .into_iter()
        .map(|(job, plan)| {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_request(&shared.cfg, &job.req, plan.tier, job.token.clone())
            }));
            (job, plan, caught)
        })
        .collect();

    // Phase C: resolve every member exactly once under one lock round.
    let mut sends: Vec<Send> = Vec::new();
    {
        let mut guard = lock(shared);
        let inner = &mut *guard;
        if fused_count >= 2 {
            inner.metrics.service.batches_formed += 1;
            inner.metrics.service.batch_members += fused_count as u64;
        }
        // The shared machine's metrics count once — not once per member.
        if let Some(bm) = batch_metrics.take() {
            inner.metrics.absorb(&bm);
        }
        for (job, plan, resp) in fused_done {
            inner.in_flight -= 1;
            finish_tenant(inner, &job.req.tenant);
            inner.metrics.service.completed += 1;
            let alg = job.req.workload.algorithm();
            let svc = &mut inner.metrics.service;
            if let Some(br) = inner.breakers.get_mut(alg) {
                br.report(plan, Signal::Clean, svc);
            }
            sends.push((job.tx, Ok(resp)));
        }
        for (job, plan, err) in fused_dead {
            inner.in_flight -= 1;
            finish_tenant(inner, &job.req.tenant);
            let signal = match &err {
                RunError::Cancelled { .. } => {
                    inner.metrics.service.cancelled += 1;
                    Signal::Neutral
                }
                RunError::DeadlineExceeded { .. } => {
                    inner.metrics.service.deadline_exceeded += 1;
                    Signal::Neutral
                }
                RunError::InvalidInput { .. } => {
                    inner.metrics.service.invalid_inputs += 1;
                    Signal::Neutral
                }
                _ => {
                    inner.metrics.service.run_errors += 1;
                    Signal::Strained
                }
            };
            let alg = job.req.workload.algorithm();
            let svc = &mut inner.metrics.service;
            if let Some(br) = inner.breakers.get_mut(alg) {
                br.report(plan, signal, svc);
            }
            sends.push((job.tx, Err(ServiceError::Run(err))));
        }
        for (job, plan, caught) in solo_runs {
            inner.in_flight -= 1;
            finish_tenant(inner, &job.req.tenant);
            let alg = job.req.workload.algorithm();
            let (signal, result) = resolve_run(inner, alg, plan.tier, caught);
            let svc = &mut inner.metrics.service;
            if let Some(br) = inner.breakers.get_mut(alg) {
                br.report(plan, signal, svc);
            }
            sends.push((job.tx, result));
        }
    }
    for (tx, r) in sends {
        let _ = tx.send(r);
    }
}

/// Execute one admitted request at `tier` on its own machine.
fn run_request(cfg: &ServiceConfig, req: &Request, tier: Tier, token: CancelToken) -> RunReturn {
    let mut m = Machine::new(req.seed);
    m.tuning = cfg.tuning;
    if let Some(plan) = &req.chaos {
        m.install_faults(plan.clone());
    }
    m.set_cancel_token(token);
    let result = match tier {
        Tier::Sequential => run_sequential(&mut m, req),
        Tier::Full | Tier::ReducedRetry => {
            let scfg = SuperviseConfig {
                max_attempts: if tier == Tier::ReducedRetry {
                    1
                } else {
                    cfg.max_attempts
                },
            };
            match cfg.split_threshold {
                Some(thr) if req.workload.len() >= thr => {
                    run_sharded(&mut m, req, tier, &scfg, cfg.shards)
                }
                _ => run_supervised(&mut m, req, tier, &scfg),
            }
        }
    };
    (m.metrics.clone(), result)
}

/// The shard-split path for large requests: certified partial hulls on
/// `shards` child machines, merged and re-certified against the whole
/// input. The 2-D split serves both `Hull2dAlgo` variants (the certified
/// hull is the same unique chain either way).
fn run_sharded(
    m: &mut Machine,
    req: &Request,
    tier: Tier,
    scfg: &SuperviseConfig,
    shards: usize,
) -> Result<Response, RunError> {
    let (value, outcome, attempts) = match &req.workload {
        Workload::Hull2d { points, .. } => {
            let s = upper_hull_sharded_supervised(m, points, shards, scfg)?;
            (ResponseValue::Hull2d(s.value), s.outcome, s.attempts)
        }
        Workload::Hull3d { points } => {
            let s = upper_hull3_sharded_supervised(m, points, shards, scfg)?;
            (ResponseValue::Hull3d(s.value), s.outcome, s.attempts)
        }
    };
    Ok(Response {
        value,
        tier,
        outcome: Some(outcome),
        attempts,
        sim_steps: m.metrics.steps,
    })
}

fn run_supervised(
    m: &mut Machine,
    req: &Request,
    tier: Tier,
    scfg: &SuperviseConfig,
) -> Result<Response, RunError> {
    let (value, outcome, attempts) = match &req.workload {
        Workload::Hull2d { points, algo } => match algo {
            Hull2dAlgo::Unsorted => {
                let s =
                    upper_hull_unsorted_supervised(m, points, &UnsortedParams::default(), scfg)?;
                (ResponseValue::Hull2d(s.value.0.hull), s.outcome, s.attempts)
            }
            Hull2dAlgo::Dac => {
                let s = upper_hull_dac_supervised(m, points, false, scfg)?;
                (ResponseValue::Hull2d(s.value.hull), s.outcome, s.attempts)
            }
        },
        Workload::Hull3d { points } => {
            let s = upper_hull3_unsorted_supervised(m, points, &Unsorted3Params::default(), scfg)?;
            (
                ResponseValue::Hull3d(s.value.0.facets),
                s.outcome,
                s.attempts,
            )
        }
    };
    Ok(Response {
        value,
        tier,
        outcome: Some(outcome),
        attempts,
        sim_steps: m.metrics.steps,
    })
}

/// The [`Tier::Sequential`] path: exact host-side algorithms, no
/// randomized machinery, no supervisor — the breaker's last resort. Input
/// validation and certificate verification still run (degraded never
/// means unchecked), and the work is charged to the machine at p = 1 so
/// the aggregate metrics stay honest.
fn run_sequential(m: &mut Machine, req: &Request) -> Result<Response, RunError> {
    let alg = req.workload.algorithm();
    if let Some(cause) = m.cancel_token().and_then(|t| t.check().err()) {
        return Err(RunError::from_cancel(alg, cause));
    }
    let value = match &req.workload {
        Workload::Hull2d { points, .. } => {
            validate_points2(points).map_err(|e| RunError::invalid_input(alg, e))?;
            let mut stats = SeqStats::default();
            let hull = monotone::upper_hull(points, &mut stats);
            m.charge(stats.total(), stats.total());
            verify_upper_hull(points, &hull).map_err(|detail| RunError::Verify {
                algorithm: alg,
                detail,
            })?;
            ResponseValue::Hull2d(hull)
        }
        Workload::Hull3d { points } => {
            validate_points3(points).map_err(|e| RunError::invalid_input(alg, e))?;
            let mut stats = Seq3Stats::default();
            let facets = upper_hull3_giftwrap(points, &mut stats);
            m.charge(stats.total(), stats.total());
            verify_upper_hull3(points, &facets, true).map_err(|detail| RunError::Verify {
                algorithm: alg,
                detail,
            })?;
            ResponseValue::Hull3d(facets)
        }
    };
    Ok(Response {
        value,
        tier: Tier::Sequential,
        outcome: None,
        attempts: 0,
        sim_steps: m.metrics.steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::Point2;
    use ipch_pram::FaultPlan;

    fn pts(n: usize) -> Vec<Point2> {
        // A strict parabola: distinct x, no duplicates, every point on the
        // upper hull — cheap to generate and certificate-friendly.
        (0..n)
            .map(|i| {
                let x = i as f64;
                Point2 {
                    x,
                    y: -(x - n as f64 / 2.0).powi(2),
                }
            })
            .collect()
    }

    fn req2(tenant: &str, seed: u64, n: usize) -> Request {
        Request::new(
            tenant,
            seed,
            Workload::Hull2d {
                points: pts(n),
                algo: Hull2dAlgo::Unsorted,
            },
        )
    }

    fn manual(cfg: ServiceConfig) -> Service {
        Service::new(ServiceConfig { workers: 0, ..cfg })
    }

    fn assert_resolved(stats: &ServiceStats) {
        assert_eq!(
            stats.submitted,
            stats.total_resolved(),
            "resolution invariant violated: {stats:?}"
        );
    }

    #[test]
    fn precheck_admits_all_served_algorithms() {
        // every served algorithm has a registered plan, and the canonical
        // plans prove out — the precheck must be invisible to clean traffic
        for alg in ["hull2d/unsorted", "hull2d/dac", "hull3d/unsorted3d"] {
            let plan = plan_for(alg).unwrap_or_else(|| panic!("{alg} has no plan"));
            for n in [0usize, 1, 16, 4096] {
                precheck_plan(plan, n).unwrap_or_else(|e| panic!("{alg} at n={n}: {e}"));
            }
        }
        let svc = manual(ServiceConfig::default());
        let t = svc.submit(req2("acme", 3, 32)).unwrap();
        svc.drain();
        assert!(t.wait().is_ok());
        let st = svc.health().stats;
        assert_eq!(st.static_rejects, 0);
        assert_resolved(&st);
    }

    #[test]
    fn precheck_rejects_defective_plan_as_typed_run_error() {
        use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
        // an off-by-one scatter: writes [0, n] into an n-cell array
        let mut plan = AlgorithmPlan::new(ipch_pram::ModelContract {
            algorithm: "test/defective",
            class: ipch_pram::ModelClass::Crcw,
            races: ipch_pram::RaceExpectation::Deterministic,
        });
        let a = plan.array("t.a", Affine::n());
        plan.step(
            StepPlan::new(
                "scatter",
                Affine::n().plus(1),
                ipch_pram::WritePolicy::Arbitrary,
            )
            .write(a, IndexSet::Exact(Affine::pid())),
        );
        let err = precheck_plan(&plan, 64).unwrap_err();
        assert_eq!(err.code(), "plan_out_of_bounds");
        assert!(err.is_terminal());
        let wrapped = ServiceError::Run(err);
        assert_eq!(wrapped.code(), "plan_out_of_bounds");
    }

    #[test]
    fn clean_request_completes_with_certificate_at_full_tier() {
        let svc = manual(ServiceConfig::default());
        let t = svc.submit(req2("acme", 7, 64)).unwrap();
        svc.drain();
        let resp = t.wait().unwrap();
        assert_eq!(resp.tier, Tier::Full);
        assert_eq!(resp.outcome, Some(Outcome::FirstTry));
        match resp.value {
            ResponseValue::Hull2d(h) => assert_eq!(h.vertices.len(), 64),
            _ => panic!("wrong value kind"),
        }
        assert!(resp.sim_steps > 0);
        let h = svc.health();
        assert_eq!(h.queue_depth, 0);
        assert_eq!(h.in_flight, 0);
        assert_eq!(h.stats.submitted, 1);
        assert_eq!(h.stats.admitted, 1);
        assert_eq!(h.stats.completed, 1);
        assert_resolved(&h.stats);
        let m = svc.shutdown();
        assert!(m.steps > 0, "request machine metrics were absorbed");
    }

    #[test]
    fn queue_full_sheds_typed_with_doubling_backoff() {
        let svc = manual(ServiceConfig {
            queue_capacity: 2,
            ..ServiceConfig::default()
        });
        let t1 = svc.submit(req2("acme", 1, 16)).unwrap();
        let t2 = svc.submit(req2("acme", 2, 16)).unwrap();
        let e3 = svc.submit(req2("acme", 3, 16)).unwrap_err();
        let e4 = svc.submit(req2("acme", 4, 16)).unwrap_err();
        let (r3, r4) = match (&e3, &e4) {
            (
                ServiceError::Rejected {
                    reason: RejectReason::QueueFull { depth: 2 },
                    retry_after: r3,
                },
                ServiceError::Rejected {
                    reason: RejectReason::QueueFull { depth: 2 },
                    retry_after: r4,
                },
            ) => (*r3, *r4),
            other => panic!("expected two queue-full sheds, got {other:?}"),
        };
        assert_eq!(r4, r3 * 2, "backoff hint doubles per consecutive reject");
        assert!(e3.is_shed() && e4.is_shed());
        svc.drain();
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        let st = svc.health().stats;
        assert_eq!(st.rejected_queue_full, 2);
        assert_eq!(st.completed, 2);
        assert_resolved(&st);
    }

    #[test]
    fn tenant_limit_sheds_only_the_noisy_tenant() {
        let svc = manual(ServiceConfig {
            per_tenant_inflight: 1,
            ..ServiceConfig::default()
        });
        let t1 = svc.submit(req2("noisy", 1, 16)).unwrap();
        let err = svc.submit(req2("noisy", 2, 16)).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Rejected {
                reason: RejectReason::TenantLimit { in_flight: 1 },
                ..
            }
        ));
        let t2 = svc.submit(req2("quiet", 3, 16)).unwrap();
        svc.drain();
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        // The noisy tenant's slot freed up after the drain.
        let t3 = svc.submit(req2("noisy", 4, 16)).unwrap();
        svc.drain();
        assert!(t3.wait().is_ok());
        let st = svc.health().stats;
        assert_eq!(st.rejected_tenant_limit, 1);
        assert_resolved(&st);
    }

    #[test]
    fn cancel_while_queued_resolves_typed_without_running() {
        let svc = manual(ServiceConfig::default());
        let t = svc.submit(req2("acme", 1, 16)).unwrap();
        t.cancel();
        svc.drain();
        match t.wait() {
            Err(ServiceError::Run(RunError::Cancelled { algorithm })) => {
                assert_eq!(algorithm, "hull2d/unsorted");
            }
            other => panic!("expected typed cancellation, got {other:?}"),
        }
        let st = svc.health().stats;
        assert_eq!(st.cancelled, 1);
        assert_eq!(st.completed, 0);
        assert_resolved(&st);
        // No machine ran, so no simulator metrics were absorbed.
        assert_eq!(svc.metrics().steps, 0);
    }

    #[test]
    fn expired_deadline_in_queue_is_shed_with_retry_hint() {
        let svc = manual(ServiceConfig::default());
        let mut req = req2("acme", 1, 16);
        req.deadline = Some(Duration::ZERO);
        let t = svc.submit(req).unwrap();
        svc.drain();
        match t.wait() {
            Err(
                e @ ServiceError::Rejected {
                    reason: RejectReason::Expired,
                    ..
                },
            ) => assert_eq!(e.code(), "shed_expired"),
            other => panic!("expected expired shed, got {other:?}"),
        }
        let st = svc.health().stats;
        assert_eq!(st.shed_expired, 1);
        assert_resolved(&st);
    }

    #[test]
    fn default_deadline_applies_when_request_has_none() {
        let svc = manual(ServiceConfig {
            default_deadline: Some(Duration::ZERO),
            ..ServiceConfig::default()
        });
        let t = svc.submit(req2("acme", 1, 16)).unwrap();
        svc.drain();
        assert!(matches!(
            t.wait(),
            Err(ServiceError::Rejected {
                reason: RejectReason::Expired,
                ..
            })
        ));
        assert_resolved(&svc.health().stats);
    }

    #[test]
    fn invalid_input_is_typed_and_neutral_for_the_breaker() {
        let svc = manual(ServiceConfig::default());
        let mut p = pts(16);
        p[3].y = f64::NAN;
        let t = svc
            .submit(Request::new(
                "acme",
                1,
                Workload::Hull2d {
                    points: p,
                    algo: Hull2dAlgo::Unsorted,
                },
            ))
            .unwrap();
        svc.drain();
        match t.wait() {
            Err(ServiceError::Run(e @ RunError::InvalidInput { .. })) => {
                assert_eq!(e.code(), "invalid_input");
            }
            other => panic!("expected typed invalid input, got {other:?}"),
        }
        let h = svc.health();
        assert_eq!(h.stats.invalid_inputs, 1);
        assert_resolved(&h.stats);
        let b = &h.breakers[0];
        assert_eq!((b.tier, b.strain_streak), (Tier::Full, 0), "neutral signal");
    }

    #[test]
    fn breaker_trips_through_tiers_and_recovers_via_probes() {
        let svc = manual(ServiceConfig {
            breaker: BreakerConfig {
                trip_after: 2,
                probe_after: 1,
            },
            ..ServiceConfig::default()
        });
        let chaos = FaultPlan {
            corrupt_rate: 1.0,
            ..FaultPlan::default()
        };
        let strained = |seed: u64| {
            let mut r = req2("acme", seed, 32);
            r.chaos = Some(chaos.clone());
            r
        };

        // Strained traffic walks the breaker down Full → ReducedRetry →
        // Sequential (with probe_after=1 some requests are half-open
        // probes whose strained results just re-arm the window, so this
        // takes a few more than 2·trip_after requests). At corrupt_rate
        // 1.0 every commit is corrupted, so a run either falls back
        // (strained success) or fails its certificate outright (typed
        // error) — the fallback machine inherits the chaos plan too; both
        // count as strain. Sequential runs are host-side and immune, so
        // the walk terminates there.
        for seed in 0..20u64 {
            if svc.health().breakers.first().map(|b| b.tier) == Some(Tier::Sequential) {
                break;
            }
            let t = svc.submit(strained(seed)).unwrap();
            svc.drain();
            match t.wait() {
                Ok(resp) => assert_eq!(resp.outcome, Some(Outcome::FellBack)),
                Err(ServiceError::Run(e)) => assert!(!e.is_terminal(), "strained error: {e}"),
                other => panic!("unexpected resolution: {other:?}"),
            }
        }
        let h = svc.health();
        assert_eq!(h.breakers[0].tier, Tier::Sequential);
        assert_eq!(h.stats.breaker_trips, 2);

        // Sequential run (host-side, immune to the machine's chaos) serves
        // degraded; with probe_after=1 the next request is a half-open
        // probe at ReducedRetry. Feed it clean traffic to climb back.
        let t = svc.submit(req2("acme", 10, 32)).unwrap();
        svc.drain();
        let resp = t.wait().unwrap();
        assert_eq!(resp.tier, Tier::Sequential);
        assert_eq!(resp.outcome, None);

        let mut probe_tiers = Vec::new();
        for seed in 11..20u64 {
            let t = svc.submit(req2("acme", seed, 32)).unwrap();
            svc.drain();
            probe_tiers.push(t.wait().unwrap().tier);
            if svc.health().breakers[0].tier == Tier::Full {
                break;
            }
        }
        let h = svc.health();
        assert_eq!(h.breakers[0].tier, Tier::Full, "breaker recovered");
        assert_eq!(h.stats.breaker_recoveries, 1, "counted on reaching Full");
        assert!(h.stats.breaker_probes >= 2, "one probe per tier climbed");
        assert!(
            probe_tiers.contains(&Tier::ReducedRetry) && probe_tiers.contains(&Tier::Full),
            "requests were observably served at the probe tiers: {probe_tiers:?}"
        );
        assert!(h.stats.degraded_tier1_runs > 0 && h.stats.degraded_tier2_runs > 0);
        assert_resolved(&h.stats);
    }

    #[test]
    fn sequential_tier_serves_hull3d_too() {
        let svc = manual(ServiceConfig {
            breaker: BreakerConfig {
                trip_after: 1,
                probe_after: 1000,
            },
            ..ServiceConfig::default()
        });
        let points: Vec<ipch_geom::Point3> = (0..20)
            .map(|i| {
                let x = (i % 5) as f64;
                let y = (i / 5) as f64;
                ipch_geom::Point3 {
                    x,
                    y,
                    z: -(x * x + y * y) + 0.01 * i as f64,
                }
            })
            .collect();
        let mk = |seed: u64, chaos: Option<FaultPlan>| Request {
            tenant: "acme".into(),
            seed,
            workload: Workload::Hull3d {
                points: points.clone(),
            },
            deadline: None,
            chaos,
        };
        // Two strained runs walk the 3-D breaker down to Sequential.
        for seed in 0..2u64 {
            let t = svc
                .submit(mk(
                    seed,
                    Some(FaultPlan {
                        corrupt_rate: 1.0,
                        ..FaultPlan::default()
                    }),
                ))
                .unwrap();
            svc.drain();
            t.wait().unwrap();
        }
        assert_eq!(svc.health().breakers[0].tier, Tier::Sequential);
        let t = svc.submit(mk(9, None)).unwrap();
        svc.drain();
        let resp = t.wait().unwrap();
        assert_eq!(resp.tier, Tier::Sequential);
        match resp.value {
            ResponseValue::Hull3d(f) => assert!(!f.is_empty()),
            _ => panic!("wrong value kind"),
        }
        assert_resolved(&svc.health().stats);
    }

    #[test]
    fn panics_are_isolated_per_request_and_typed() {
        let svc = manual(ServiceConfig::default());
        let t = svc.submit(req2("acme", 1, 16)).unwrap();
        // Drive the resolution path with a runner that panics, standing in
        // for any non-cancellation unwind escaping a request.
        let job = lock(&svc.shared).queues[0].pop_front().unwrap();
        handle_with(&svc.shared, job, |_, _, _, _| panic!("request blew up"));
        match t.wait() {
            Err(ServiceError::Run(RunError::Panic { detail, .. })) => {
                assert!(detail.contains("request blew up"));
            }
            other => panic!("expected isolated panic, got {other:?}"),
        }
        let h = svc.health();
        assert_eq!(h.stats.panics_isolated, 1);
        assert_eq!(h.in_flight, 0, "in-flight count released");
        assert_resolved(&h.stats);
        // The breaker saw a strain, not a crash.
        assert_eq!(h.breakers[0].strain_streak, 1);
        // And the service still serves.
        let t2 = svc.submit(req2("acme", 2, 16)).unwrap();
        svc.drain();
        assert!(t2.wait().is_ok());
    }

    #[test]
    fn escaped_cancel_unwind_is_typed_not_a_panic() {
        let svc = manual(ServiceConfig::default());
        let t = svc.submit(req2("acme", 1, 16)).unwrap();
        let job = lock(&svc.shared).queues[0].pop_front().unwrap();
        handle_with(&svc.shared, job, |_, _, _, _| {
            std::panic::panic_any(CancelUnwind {
                cause: CancelCause::DeadlineExceeded,
            })
        });
        match t.wait() {
            Err(ServiceError::Run(RunError::DeadlineExceeded { .. })) => {}
            other => panic!("expected typed deadline, got {other:?}"),
        }
        let st = svc.health().stats;
        assert_eq!(st.deadline_exceeded, 1);
        assert_eq!(st.panics_isolated, 0);
        assert_resolved(&st);
    }

    #[test]
    fn worker_threads_serve_and_shutdown_joins() {
        let svc = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| svc.submit(req2("acme", i, 48)).unwrap())
            .collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let st = svc.health().stats;
        assert_eq!(st.completed, 8);
        assert_resolved(&st);
        let m = svc.shutdown();
        assert_eq!(m.service.completed, 8);
    }

    #[test]
    fn shutdown_rejects_new_submissions_but_drains_the_queue() {
        let svc = manual(ServiceConfig::default());
        let t = svc.submit(req2("acme", 1, 16)).unwrap();
        let m = svc.shutdown();
        assert!(t.wait().is_ok(), "queued work ran during shutdown");
        assert_eq!(m.service.completed, 1);
        assert_resolved(&m.service);
    }

    #[test]
    fn batched_traffic_completes_and_counts_batches() {
        let svc = manual(ServiceConfig {
            batch_window: 16,
            batch_max: 8,
            ..ServiceConfig::default()
        });
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| svc.submit(req2("acme", 100 + i, 32)).unwrap())
            .collect();
        svc.drain();
        for t in tickets {
            let resp = t.wait().unwrap();
            assert_eq!(resp.tier, Tier::Full);
            assert_eq!(resp.outcome, Some(Outcome::FirstTry));
            match resp.value {
                ResponseValue::Hull2d(h) => assert_eq!(h.vertices.len(), 32),
                _ => panic!("wrong value kind"),
            }
        }
        let st = svc.health().stats;
        assert_eq!(st.completed, 8);
        assert_eq!(st.batches_formed, 1, "one fused dispatch");
        assert_eq!(st.batch_members, 8);
        assert_resolved(&st);
    }

    #[test]
    fn batched_results_are_bit_identical_to_unbatched() {
        let run = |batch_window: usize| -> Vec<ResponseValue> {
            let svc = manual(ServiceConfig {
                batch_window,
                batch_max: 8,
                ..ServiceConfig::default()
            });
            let tickets: Vec<Ticket> = (0..6)
                .map(|i| svc.submit(req2("acme", 50 + i, 24 + i as usize)).unwrap())
                .collect();
            svc.drain();
            tickets
                .into_iter()
                .map(|t| t.wait().unwrap().value)
                .collect()
        };
        assert_eq!(run(0), run(16), "fused and solo runs return one hull");
    }

    #[test]
    fn mixed_batch_keeps_ineligible_members_solo() {
        // A chaos-carrying request and a 3-D request interleave with small
        // 2-D ones: the former must not fuse, and everyone resolves.
        let svc = manual(ServiceConfig {
            batch_window: 16,
            batch_max: 8,
            ..ServiceConfig::default()
        });
        let mut tickets = Vec::new();
        for i in 0..3u64 {
            tickets.push(svc.submit(req2("acme", i, 24)).unwrap());
        }
        let mut chaotic = req2("acme", 9, 24);
        chaotic.chaos = Some(FaultPlan::default());
        tickets.push(svc.submit(chaotic).unwrap());
        for i in 4..6u64 {
            tickets.push(svc.submit(req2("acme", i, 24)).unwrap());
        }
        svc.drain();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let st = svc.health().stats;
        assert_eq!(st.completed, 6);
        assert_eq!(st.batches_formed, 1);
        assert_eq!(st.batch_members, 5, "chaos request stayed solo");
        assert_resolved(&st);
    }

    #[test]
    fn shard_split_serves_large_requests_with_counters() {
        let svc = manual(ServiceConfig {
            shards: 3,
            split_threshold: Some(100),
            ..ServiceConfig::default()
        });
        let t = svc.submit(req2("acme", 3, 600)).unwrap();
        svc.drain();
        let resp = t.wait().unwrap();
        assert_eq!(resp.outcome, Some(Outcome::FirstTry));
        match resp.value {
            ResponseValue::Hull2d(h) => assert_eq!(h.vertices.len(), 600),
            _ => panic!("wrong value kind"),
        }
        let st = svc.health().stats;
        assert_eq!(st.shard_splits, 1, "machine-side counter was absorbed");
        assert_eq!(st.shard_merge_failures, 0);
        assert_resolved(&st);

        // below the threshold: no split
        let t = svc.submit(req2("acme", 4, 64)).unwrap();
        svc.drain();
        assert!(t.wait().is_ok());
        assert_eq!(svc.health().stats.shard_splits, 1);
    }

    #[test]
    fn tenant_affinity_pins_each_tenant_to_one_shard() {
        let svc = manual(ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        });
        let mut tickets = Vec::new();
        for i in 0..6u64 {
            tickets.push(svc.submit(req2("pinned", i, 16)).unwrap());
        }
        let h = svc.health();
        assert_eq!(h.shard_depths.len(), 4);
        assert_eq!(h.queue_depth, 6);
        assert_eq!(
            h.shard_depths.iter().filter(|&&d| d > 0).count(),
            1,
            "one tenant lands on exactly one lane: {:?}",
            h.shard_depths
        );
        assert!(h.render().contains("shards=4"));
        svc.drain();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        assert_resolved(&svc.health().stats);
    }

    #[test]
    fn cancelled_batch_member_resolves_typed_while_siblings_complete() {
        let svc = manual(ServiceConfig {
            batch_window: 16,
            batch_max: 8,
            ..ServiceConfig::default()
        });
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| svc.submit(req2("acme", i, 24)).unwrap())
            .collect();
        tickets[2].cancel();
        svc.drain();
        for (i, t) in tickets.into_iter().enumerate() {
            match t.wait() {
                Ok(resp) => {
                    assert_ne!(i, 2);
                    assert_eq!(resp.outcome, Some(Outcome::FirstTry));
                }
                Err(ServiceError::Run(RunError::Cancelled { .. })) => assert_eq!(i, 2),
                other => panic!("member {i}: unexpected {other:?}"),
            }
        }
        let st = svc.health().stats;
        assert_eq!(st.completed, 3);
        assert_eq!(st.cancelled, 1);
        assert_resolved(&st);
    }

    #[test]
    fn running_request_cancels_mid_flight_at_a_step_boundary() {
        // One worker thread, a big slow request, cancel from the outside:
        // the machine must abort cooperatively and resolve typed.
        let svc = Service::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let t = svc.submit(req2("acme", 5, 200_000)).unwrap();
        // Cancel as soon as the job is actually running (or immediately if
        // it's still queued — both paths are typed).
        while svc.health().in_flight == 0 && t.try_wait().is_none() {
            std::thread::yield_now();
        }
        t.cancel();
        match t.wait() {
            Err(ServiceError::Run(RunError::Cancelled { .. })) => {}
            Ok(_) => {} // raced to completion first: legal
            other => panic!("expected cancel or completion, got {other:?}"),
        }
        let st = svc.health().stats;
        assert_eq!(st.cancelled + st.completed, 1);
        assert_resolved(&st);
    }
}
