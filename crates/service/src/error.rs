//! Typed request-level failures of the serving runtime.
//!
//! The runtime's invariant is that every submitted request resolves exactly
//! once, into a value or one of these errors — shedding is always *explicit*
//! (a typed [`ServiceError::Rejected`] with a retry hint), never a silent
//! queue drop, and algorithm failures arrive as the supervisor's own typed
//! [`RunError`] rather than being flattened into strings.

use std::time::Duration;

use ipch_pram::RunError;

/// Why admission (or the queue) refused a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded request queue was at capacity.
    QueueFull {
        /// Queue depth at rejection time (== configured capacity).
        depth: usize,
    },
    /// The tenant already had its configured number of requests in flight
    /// (queued + running).
    TenantLimit {
        /// The tenant's in-flight count at rejection time.
        in_flight: usize,
    },
    /// The request's deadline expired while it was still queued; it was
    /// shed without being dispatched.
    Expired,
}

/// Typed failure of a request submitted to the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Load was shed. `retry_after` is an exponential-backoff hint: it
    /// doubles with each consecutive rejection of the same tenant and
    /// resets on admission.
    Rejected {
        /// What was over limit.
        reason: RejectReason,
        /// Suggested client backoff before resubmitting.
        retry_after: Duration,
    },
    /// The run itself failed with a typed algorithm/runtime error
    /// (cancellation, deadline, invalid input, attempts exhausted, an
    /// isolated panic, …).
    Run(RunError),
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
}

impl ServiceError {
    /// Stable machine-readable code for wire serialization and logs.
    /// [`ServiceError::Run`] defers to [`RunError::code`].
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Rejected {
                reason: RejectReason::QueueFull { .. },
                ..
            } => "rejected_queue_full",
            ServiceError::Rejected {
                reason: RejectReason::TenantLimit { .. },
                ..
            } => "rejected_tenant_limit",
            ServiceError::Rejected {
                reason: RejectReason::Expired,
                ..
            } => "shed_expired",
            ServiceError::Run(e) => e.code(),
            ServiceError::ShuttingDown => "shutting_down",
        }
    }

    /// True for the explicit load-shedding outcomes (the request never
    /// ran).
    pub fn is_shed(&self) -> bool {
        matches!(self, ServiceError::Rejected { .. })
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Rejected {
                reason,
                retry_after,
            } => {
                match reason {
                    RejectReason::QueueFull { depth } => {
                        write!(f, "shed: queue full at depth {depth}")?;
                    }
                    RejectReason::TenantLimit { in_flight } => {
                        write!(f, "shed: tenant at {in_flight} requests in flight")?;
                    }
                    RejectReason::Expired => {
                        write!(f, "shed: deadline expired while queued")?;
                    }
                }
                write!(f, " (retry after {:?})", retry_after)
            }
            ServiceError::Run(e) => write!(f, "{e}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Run(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RunError> for ServiceError {
    fn from(e: RunError) -> Self {
        ServiceError::Run(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let cases = [
            (
                ServiceError::Rejected {
                    reason: RejectReason::QueueFull { depth: 4 },
                    retry_after: Duration::from_millis(10),
                },
                "rejected_queue_full",
            ),
            (
                ServiceError::Rejected {
                    reason: RejectReason::TenantLimit { in_flight: 2 },
                    retry_after: Duration::from_millis(10),
                },
                "rejected_tenant_limit",
            ),
            (
                ServiceError::Rejected {
                    reason: RejectReason::Expired,
                    retry_after: Duration::from_millis(10),
                },
                "shed_expired",
            ),
            (
                ServiceError::Run(RunError::Cancelled { algorithm: "x" }),
                "cancelled",
            ),
            (ServiceError::ShuttingDown, "shutting_down"),
        ];
        let mut codes = std::collections::HashSet::new();
        for (e, code) in cases {
            assert_eq!(e.code(), code);
            let dyn_err: &dyn std::error::Error = &e;
            assert!(!dyn_err.to_string().is_empty());
            assert!(codes.insert(code));
        }
    }

    #[test]
    fn shed_classification() {
        assert!(ServiceError::Rejected {
            reason: RejectReason::Expired,
            retry_after: Duration::ZERO,
        }
        .is_shed());
        assert!(!ServiceError::ShuttingDown.is_shed());
        assert!(!ServiceError::Run(RunError::Cancelled { algorithm: "x" }).is_shed());
    }
}
