//! Shard-split upper hull: partition a large instance across shard
//! workers, certify each partial hull, merge by the paper's
//! hull-of-hulls path, certify the whole.
//!
//! A request above the serving runtime's split threshold is too big to sit
//! on one queue lane: this entry point charges the Cole sort (same
//! convention as `SortMode::ChargedCole`), cuts the sorted order into at
//! most `shards` contiguous x-ranges — never splitting an equal-x column,
//! so the groups stay x-disjoint as Lemma 2.6 requires — and runs the
//! fully supervised unsorted algorithm on each part on its own child
//! machine with the data-parallel kernel backend. The certified partial
//! hulls are merged with [`hull_of_hulls`] (a tree of bridges over the
//! part boundaries) and the stitched chain must pass the whole-input
//! [`verify_upper_hull`] certificate before it is returned.
//!
//! Failure containment mirrors the supervised wrappers: terminal errors
//! (cancellation, deadline, invalid input) propagate immediately; any
//! other part failure, a missing bridge, or a failed whole-hull
//! certificate demotes the request to one unsharded supervised run
//! (counted in `ServiceStats::shard_merge_failures` when the merge itself
//! was at fault) — the caller always receives a certified hull or a typed
//! error, exactly as if sharding had never happened. And because a
//! certified upper hull is unique, a sharded success is bit-identical to
//! the unsharded result.

use ipch_geom::hull_chain::verify_upper_hull;
use ipch_geom::point::argsort_xy;
use ipch_geom::validate::validate_points2;
use ipch_geom::{Point2, UpperHull};
use ipch_pram::{
    KernelBackend, Machine, Metrics, Outcome, RunError, Shm, SuperviseConfig, Supervised,
};

use super::invariant::{hull_of_hulls, HbConfig};
use super::supervised::upper_hull_unsorted_supervised;
use super::unsorted::UnsortedParams;

/// Algorithm name used in typed errors from the sharded path itself
/// (part-level errors keep their own algorithm names).
pub const SHARDED_ALG: &str = "hull2d/sharded";

/// Child-machine tag base for shard workers (one tag per shard index).
const SHARD_TAG: u64 = 0x5AA2_D001;
/// Child-machine tag for the unsharded demotion run.
const FALLBACK_TAG: u64 = 0x5AA2_DFFF;

/// Supervised shard-split upper hull over `shards` workers.
///
/// Vertex ids refer to the original `points` array. The returned
/// [`Supervised`] aggregates the parts: `attempts` sums part attempts,
/// `outcome` is the worst part outcome (`FellBack` when any part or the
/// merge demoted), `errors` concatenates part errors in shard order.
pub fn upper_hull_sharded_supervised(
    m: &mut Machine,
    points: &[Point2],
    shards: usize,
    cfg: &SuperviseConfig,
) -> Result<Supervised<UpperHull>, RunError> {
    validate_points2(points).map_err(|e| RunError::invalid_input(SHARDED_ALG, e))?;
    let n = points.len();
    let s = shards.max(2).min(n.max(1));
    m.metrics.service.shard_splits += 1;

    // Charged Cole sort of the whole input (SortMode::ChargedCole
    // convention): O(log n) steps, O(n log n) work, then the host permutes.
    let logn = (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1) as u64;
    m.charge(logn, n as u64 * logn);
    let order = argsort_xy(points);

    // Cut the sorted order into ≤ s contiguous parts, advancing each cut
    // past its equal-x run so no column is split across two groups (the
    // groups must be x-disjoint for the bridge tree).
    let target = n.div_ceil(s);
    let mut cuts: Vec<usize> = vec![0];
    let mut at = 0usize;
    while at < n {
        let mut end = (at + target).min(n);
        while end < n && points[order[end]].x == points[order[end - 1]].x {
            end += 1;
        }
        cuts.push(end);
        at = end;
    }

    // Each part runs the fully supervised unsorted algorithm on its own
    // child machine, explicitly on the data-parallel kernel backend (the
    // shard workers are where the fused-lane backend earns its keep).
    // Children inherit the fault plan and cancellation token, so chaos
    // and deadlines reach every shard.
    let mut groups: Vec<UpperHull> = Vec::with_capacity(cuts.len() - 1);
    let mut part_metrics: Vec<Metrics> = Vec::with_capacity(cuts.len() - 1);
    let mut attempts = 0u32;
    let mut errors: Vec<RunError> = Vec::new();
    let mut worst = Outcome::FirstTry;
    for (k, w) in cuts.windows(2).enumerate() {
        let ids = &order[w[0]..w[1]];
        let part: Vec<Point2> = ids.iter().map(|&i| points[i]).collect();
        let mut cm = m.child(SHARD_TAG ^ k as u64);
        cm.tuning.kernel_backend = KernelBackend::Parallel;
        match upper_hull_unsorted_supervised(&mut cm, &part, &UnsortedParams::default(), cfg) {
            Ok(sup) => {
                attempts += sup.attempts;
                errors.extend(sup.errors);
                worst = worse(worst, sup.outcome);
                let global: Vec<usize> =
                    sup.value.0.hull.vertices.iter().map(|&v| ids[v]).collect();
                groups.push(UpperHull::new(global));
                part_metrics.push(cm.metrics);
            }
            Err(e) if e.is_terminal() => {
                m.metrics.absorb_parallel(&part_metrics);
                m.metrics.absorb(&cm.metrics);
                return Err(e);
            }
            Err(e) => {
                // a dead shard (attempts + fallback all failed): demote the
                // whole request to one unsharded supervised run
                m.metrics.absorb_parallel(&part_metrics);
                m.metrics.absorb(&cm.metrics);
                errors.push(e);
                return demote(m, points, cfg, attempts, errors);
            }
        }
    }
    // Simulated time is the max over the concurrent shard workers; work and
    // host counters sum (the absorb_parallel contract).
    m.metrics.absorb_parallel(&part_metrics);

    // Merge the certified partials (Lemma 2.6) and certify the whole.
    let mut shm = Shm::new();
    let merged =
        hull_of_hulls(m, &mut shm, points, &groups, &HbConfig::default()).and_then(|(hull, _)| {
            verify_upper_hull(points, &hull).map_err(|detail| RunError::Verify {
                algorithm: SHARDED_ALG,
                detail,
            })?;
            Ok(hull)
        });
    match merged {
        Ok(hull) => Ok(Supervised {
            value: hull,
            outcome: worst,
            attempts,
            errors,
        }),
        Err(e) if e.is_terminal() => Err(e),
        Err(e) => {
            m.metrics.service.shard_merge_failures += 1;
            errors.push(e);
            demote(m, points, cfg, attempts, errors)
        }
    }
}

/// The worse of two part outcomes (`FellBack` dominates; retry counts
/// add, so the aggregate reports total retries across shards).
fn worse(a: Outcome, b: Outcome) -> Outcome {
    match (a, b) {
        (Outcome::FellBack, _) | (_, Outcome::FellBack) => Outcome::FellBack,
        (Outcome::Retried(x), Outcome::Retried(y)) => Outcome::Retried(x + y),
        (Outcome::Retried(x), _) | (_, Outcome::Retried(x)) => Outcome::Retried(x),
        _ => Outcome::FirstTry,
    }
}

/// Unsharded demotion: one supervised run over the whole input on a child
/// machine. The result is reported as `FellBack` — the sharded plan did
/// not survive, even if the demotion run itself succeeded first try.
fn demote(
    m: &mut Machine,
    points: &[Point2],
    cfg: &SuperviseConfig,
    attempts: u32,
    mut errors: Vec<RunError>,
) -> Result<Supervised<UpperHull>, RunError> {
    let mut fm = m.child(FALLBACK_TAG);
    let r = upper_hull_unsorted_supervised(&mut fm, points, &UnsortedParams::default(), cfg);
    m.metrics.absorb(&fm.metrics);
    let sup = r?;
    errors.extend(sup.errors);
    Ok(Supervised {
        value: sup.value.0.hull,
        outcome: Outcome::FellBack,
        attempts: attempts + sup.attempts,
        errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{grid, uniform_disk, uniform_square};

    #[test]
    fn sharded_matches_oracle_and_unsharded() {
        for (seed, n, s) in [(1u64, 600usize, 2usize), (2, 900, 4), (3, 512, 8)] {
            let pts = uniform_disk(n, seed);
            let mut m = Machine::new(seed);
            let sup = upper_hull_sharded_supervised(&mut m, &pts, s, &SuperviseConfig::default())
                .expect("sharded run");
            assert_eq!(sup.value, UpperHull::of(&pts), "seed {seed} s {s}");
            assert_eq!(sup.outcome, Outcome::FirstTry);
            assert_eq!(m.metrics.service.shard_splits, 1);
            assert_eq!(m.metrics.service.shard_merge_failures, 0);
        }
    }

    #[test]
    fn equal_x_columns_never_split() {
        // a grid has long equal-x runs; cuts must slide past them
        let pts = grid(400); // 20 columns of 20
        let mut m = Machine::new(5);
        let sup = upper_hull_sharded_supervised(&mut m, &pts, 7, &SuperviseConfig::default())
            .expect("grid sharded");
        assert_eq!(sup.value, UpperHull::of(&pts));
    }

    #[test]
    fn invalid_input_rejects_before_any_step() {
        let mut pts = uniform_square(100, 6);
        pts[3].x = f64::INFINITY;
        let mut m = Machine::new(6);
        let e = upper_hull_sharded_supervised(&mut m, &pts, 4, &SuperviseConfig::default())
            .unwrap_err();
        assert!(matches!(e, RunError::InvalidInput { .. }));
        assert_eq!(m.metrics.steps, 0);
    }

    #[test]
    fn more_shards_than_points_is_fine() {
        let pts = uniform_disk(5, 7);
        let mut m = Machine::new(7);
        let sup = upper_hull_sharded_supervised(&mut m, &pts, 64, &SuperviseConfig::default())
            .expect("tiny sharded");
        assert_eq!(sup.value, UpperHull::of(&pts));
    }
}
