//! Execution traces for the unsorted-input algorithm (experiments T3, F1,
//! F3 read these).

/// One recursion level's statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LevelRecord {
    /// Global level counter (across phases).
    pub level: usize,
    /// Active subproblems entering the level.
    pub problems: usize,
    /// Largest subproblem size (F1 checks the (15/16)^i envelope).
    pub max_size: usize,
    /// Total active (non-dead) points.
    pub active_points: usize,
    /// Subproblems whose randomized bridge-finding failed this level.
    pub failures: usize,
}

/// Full trace of one unsorted-algorithm run.
#[derive(Clone, Debug, Default)]
pub struct UnsortedTrace {
    /// Per-level records.
    pub levels: Vec<LevelRecord>,
    /// Phases completed (each ends with a prefix-sum compaction).
    pub phases: usize,
    /// The lower bound `l` (edges found + problems remaining) recorded at
    /// each phase end (F3 plots its growth toward the fallback trigger).
    pub l_history: Vec<usize>,
    /// Whether the O(log n)-time non-output-sensitive fallback ran.
    pub fallback: bool,
    /// Failures re-solved by the sweeping oracle.
    pub swept: usize,
    /// Hull edges found by the marriage-before-conquest phase itself
    /// (excludes fallback edges).
    pub probe_edges: usize,
}
