//! The unsorted-input output-sensitive algorithm (paper §4.1–§4.2,
//! Theorem 5): 2-D upper hull in O(log n) time and O(n log h) work, with
//! very high probability, on a randomized CRCW PRAM.
//!
//! Marriage-before-conquest, in place: every point has a virtual processor
//! and a *problem number*; subproblems are never compacted (points stay
//! where they are, the problem number is the only bookkeeping). Each level,
//! every active problem in parallel:
//!
//! 1. **Random vote** (§3.1) picks a splitter uniformly from the problem's
//!    points; **in-place bridge finding** (§3.3) finds the hull edge above
//!    it. A problem that exceeds its constant budget *fails*.
//! 2. **Failure sweeping** compacts the failed problem ids (Ragde) and
//!    re-solves each with the super-linear brute-force oracle.
//! 3. At phase ends (every ~(log n)/32 levels), a parallel **prefix sum**
//!    compacts the problem numbering and computes `l` = edges found +
//!    problems left — a lower bound on h. Once `l` crosses the threshold,
//!    the algorithm has certified that h is large and switches to the
//!    non-output-sensitive O(log n)-time fallback
//!    ([`super::dac::upper_hull_dac`], the Atallah–Goodrich role).
//! 4. **Split**: one concurrent step moves every active point to child
//!    problem 2j−1 / 2j by its side of the found edge; points under the
//!    edge die holding a pointer to it. The bridge endpoints stay alive as
//!    the children's anchors (Kirkpatrick–Seidel's trick, which guarantees
//!    the edges adjacent to a found edge remain discoverable).
//!
//! Work is O(n log h): a point participates in O(log h)-ish levels before
//! the edge above it is found (Lemma 5.3 / Seidel's analysis), and dead
//! points cost nothing. Time is O(log n): subproblem sizes decay
//! geometrically (Lemma 5.1 — experiment F1 measures the (15/16)^i
//! envelope) and each level is O(1).

use ipch_geom::soa::{f64_from_key, f64_key};
use ipch_geom::{Point2, UpperHull};
use ipch_lp::bridge::{bridge_brute, Bridge};
use ipch_lp::inplace_bridge::{find_bridge_inplace, IbConfig};
use ipch_pram::prefix::compact_indices;
use ipch_pram::{
    Machine, Metrics, ModelClass, ModelContract, RaceExpectation, ReduceOp, Shm, WritePolicy, EMPTY,
};

use super::dac::upper_hull_dac;
use super::trace::{LevelRecord, UnsortedTrace};
use crate::HullOutput;

/// How each subproblem picks the abscissa its bridge is probed at
/// (ablation A1 compares these).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SplitterPolicy {
    /// The paper's §3.1 random vote: a uniformly random problem point.
    #[default]
    RandomVote,
    /// Deterministic mid-extent abscissa (quickhull-flavoured; loses the
    /// paper's probabilistic balance guarantee but skips the vote steps).
    MidExtent,
}

/// Tuning parameters; defaults follow the paper with laptop-scale
/// constants (the paper's n^{1/32}-style exponents only separate regimes
/// at astronomical n — see DESIGN.md §6).
#[derive(Clone, Debug)]
pub struct UnsortedParams {
    /// Levels per phase; `None` = max(2, ⌈log₂n / 8⌉) (paper: (log n)/32).
    pub levels_per_phase: Option<usize>,
    /// Fallback trigger on `l`; `None` = max(32, ⌈√n⌉) (paper: n^{1/32}).
    pub fallback_threshold: Option<usize>,
    /// Safety cap on total levels; `None` = 4·log₂n + 16.
    pub max_levels: Option<usize>,
    /// In-place bridge-finder tuning.
    pub ib: IbConfig,
    /// Sample-size parameter for the random vote (workspace 16k).
    pub vote_k: usize,
    /// Disable step 2 (failure sweeping) — the T9 ablation knob. Failed
    /// problems are simply retried at later levels.
    pub disable_sweeping: bool,
    /// Splitter selection (ablation A1).
    pub splitter: SplitterPolicy,
}

impl Default for UnsortedParams {
    fn default() -> Self {
        Self {
            levels_per_phase: None,
            fallback_threshold: None,
            max_levels: None,
            ib: IbConfig {
                max_rounds: 10,
                ..IbConfig::default()
            },
            vote_k: 8,
            disable_sweeping: false,
            splitter: SplitterPolicy::default(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Sol {
    /// Bridge found: split about it.
    Bridge {
        a: usize,
        b: usize,
        edge: usize,
        lchild: i64,
        rchild: i64,
    },
    /// Problem retired (singleton / single column): points withdrawn.
    Retire,
    /// Unsolved this level (failure without sweeping): points stay put.
    Pending,
}

/// Concurrency contract: Arbitrary-CRCW in the paper; every concurrent
/// write here either agrees on the value or resolves by a deterministic
/// declared policy (Priority elections in the bridge oracle, Combine
/// reductions), so memory is independent of the tiebreak seed.
pub const UNSORTED_CONTRACT: ModelContract = ModelContract {
    algorithm: "hull2d/unsorted",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Symbolic step structure of [`upper_hull_unsorted`] for the static
/// checker ([`ipch_pram::verify`]): per-point problem-number relabelling
/// (each point reads and rewrites its own `uns.prob` cell), failure-flag
/// marking over problem ids, and the Combine extreme-x reductions into
/// single cells. Every write is either an injective pid map or a
/// single-cell Combine election — provably inside the declared
/// Deterministic Arbitrary-CRCW envelope. The bridge oracle and the
/// failure-sweep compaction run under their own contracts and plans.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    use ipch_pram::WritePolicy;
    let mut p = AlgorithmPlan::new(UNSORTED_CONTRACT);
    let prob = p.array("uns.prob", Affine::n());
    let above = p.array("uns.above", Affine::n());
    let fail = p.array("uns.fail", Affine::n());
    let maxx = p.array("uns.maxx", Affine::k(1));
    p.step(
        StepPlan::new("relabel", Affine::n(), WritePolicy::Arbitrary)
            .read(prob, IndexSet::Exact(Affine::pid()))
            .write(prob, IndexSet::Exact(Affine::pid()))
            .write(above, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("fail-mark", Affine::n(), WritePolicy::Arbitrary)
            .write(fail, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("extreme-x", Affine::n(), WritePolicy::CombineMax)
            .write(maxx, IndexSet::Exact(Affine::k(0))),
    );
    p
}

/// Run the unsorted 2-D algorithm. Returns the hull output and the trace.
///
/// # Examples
///
/// ```
/// use ipch_geom::generators::circle_plus_interior;
/// use ipch_hull2d::parallel::unsorted::{upper_hull_unsorted, UnsortedParams};
/// use ipch_pram::{Machine, Shm};
///
/// let points = circle_plus_interior(12, 400, 1); // n = 400, hull size 12
/// let mut machine = Machine::new(7);
/// let mut shm = Shm::new();
/// let (out, trace) =
///     upper_hull_unsorted(&mut machine, &mut shm, &points, &UnsortedParams::default());
/// ipch_hull2d::verify_upper_hull(&points, &out.hull).unwrap();
/// out.verify_pointers(&points).unwrap();
/// assert!(machine.metrics.total_steps() > 0);
/// assert!(!trace.levels.is_empty());
/// ```
pub fn upper_hull_unsorted(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    params: &UnsortedParams,
) -> (HullOutput, UnsortedTrace) {
    m.declare_contract(&UNSORTED_CONTRACT);
    let n = points.len();
    let mut trace = UnsortedTrace::default();
    if n == 0 {
        return (
            HullOutput {
                hull: UpperHull::new(vec![]),
                edge_above: vec![],
            },
            trace,
        );
    }
    // precompute the order-isomorphic x-key column once (SoA layout): the
    // per-problem Combining-Max/Min reductions then stream dense i64 loads
    // instead of gathering Point2 structs and re-deriving keys per element,
    // and the winning key decodes back to the bit-identical coordinate.
    let xkeys = ipch_geom::soa::x_keys(points);
    let logn = (n.max(2) as f64).log2();
    let levels_per_phase = params
        .levels_per_phase
        .unwrap_or(((logn / 8.0).ceil() as usize).max(2));
    let fallback_threshold = params
        .fallback_threshold
        .unwrap_or(((n as f64).sqrt().ceil() as usize).max(32));
    let max_levels = params.max_levels.unwrap_or((4.0 * logn) as usize + 16);
    let sweep_bound = ((n as f64).powf(0.25).ceil() as usize).max(4);

    // shared state: problem number per point (EMPTY = dead/retired),
    // edge pointer per point
    let prob = shm.alloc("uns.prob", n, 0);
    let above = shm.alloc("uns.above", n, EMPTY);

    let mut problems: Vec<Vec<usize>> = vec![(0..n).collect()];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut level = 0usize;
    let mut level_in_phase = 0usize;
    let mut fallback_edges: Vec<(usize, usize)> = Vec::new();

    'outer: while !problems.is_empty() {
        m.metrics.begin_phase("probe");
        if level >= max_levels {
            run_fallback(m, shm, points, &problems, &mut fallback_edges, &mut trace);
            break 'outer;
        }
        let rec = LevelRecord {
            level,
            problems: problems.len(),
            max_size: problems.iter().map(|p| p.len()).max().unwrap_or(0),
            active_points: problems.iter().map(|p| p.len()).sum(),
            failures: 0,
        };
        trace.levels.push(rec);
        let ri = trace.levels.len() - 1;

        // ---- step 1: vote + bridge per problem, in parallel -------------
        let mut sols: Vec<Sol> = vec![Sol::Pending; problems.len()];
        let mut failed: Vec<usize> = Vec::new();
        let mut children: Vec<Metrics> = Vec::new();
        for (j, ids) in problems.iter().enumerate() {
            let mut child = m.child((level as u64) << 32 | j as u64);
            let mut scratch = Shm::new();
            sols[j] = solve_problem(
                &mut child,
                &mut scratch,
                points,
                &xkeys,
                ids,
                params,
                &mut edges,
            );
            if matches!(sols[j], Sol::Pending) {
                failed.push(j);
            }
            children.push(child.metrics);
        }
        m.metrics.absorb_parallel(&children);
        trace.levels[ri].failures = failed.len();

        // ---- step 2: failure sweeping -----------------------------------
        m.metrics.begin_phase("sweep");
        if !failed.is_empty() && !params.disable_sweeping {
            // scoped: one "uns.fail" slot (plus Ragde's internal workspace)
            // is recycled across all levels instead of leaking per level
            let sweep_list: Vec<usize> = shm.scope(|shm| {
                let flags = shm.alloc("uns.fail", problems.len(), EMPTY);
                let ff = failed.clone();
                m.kernel_scatter(shm, 0..problems.len(), move |_, j| {
                    if ff.binary_search(&j).is_ok() {
                        Some((flags, j, j as i64))
                    } else {
                        None
                    }
                });
                let comp = ipch_inplace::ragde::ragde_compact_det(m, shm, flags, sweep_bound);
                match comp {
                    Some(c) => shm
                        .slice(c.dst)
                        .iter()
                        .copied()
                        .filter(|&x| x != EMPTY)
                        .map(|x| x as usize)
                        .collect(),
                    None => failed.clone(),
                }
            });
            let mut sweep_children: Vec<Metrics> = Vec::new();
            for j in sweep_list {
                let mut child = m.child(j as u64 ^ 0xfa11);
                let mut scratch = Shm::new();
                sols[j] = sweep_problem(
                    &mut child,
                    &mut scratch,
                    points,
                    &xkeys,
                    &problems[j],
                    params,
                    &mut edges,
                );
                if !matches!(sols[j], Sol::Pending) {
                    trace.swept += 1;
                }
                sweep_children.push(child.metrics);
            }
            m.metrics.absorb_parallel(&sweep_children);
        }

        // ---- step 4: split (one concurrent step over active points) -----
        m.metrics.begin_phase("split");
        let mut next_lists: Vec<Vec<usize>> = vec![Vec::new(); problems.len() * 2];
        for (j, s) in sols.iter_mut().enumerate() {
            if let Sol::Bridge { lchild, rchild, .. } = s {
                *lchild = (2 * j) as i64;
                *rchild = (2 * j + 1) as i64;
            }
        }
        let sols_ref = &sols;
        let active: Vec<usize> = problems.iter().flatten().copied().collect();
        // xlint: allow(arbitrary-policy): each processor writes only its own
        // slot — exclusive cells, the policy never resolves a collision.
        m.step_with_policy(shm, &active, WritePolicy::Arbitrary, |ctx| {
            let i = ctx.pid;
            let j = ctx.read(prob, i) as usize;
            match sols_ref[j] {
                // pending problems park at their left-child slot so the
                // renumbering below sees a consistent 2·#problems id space
                Sol::Pending => ctx.write(prob, i, (2 * j) as i64),
                Sol::Retire => ctx.write(prob, i, EMPTY),
                Sol::Bridge {
                    a,
                    b,
                    edge,
                    lchild,
                    rchild,
                } => {
                    let p = points[i];
                    if i == a || (i != b && p.x < points[a].x) {
                        ctx.write(prob, i, lchild);
                    } else if i == b || p.x > points[b].x {
                        ctx.write(prob, i, rchild);
                    } else {
                        ctx.write(prob, i, EMPTY);
                        ctx.write(above, i, edge as i64);
                    }
                }
            }
        });
        // host-side rebuild of the problem lists (in-model: the lists are
        // implicit in `prob`; rebuilding is bookkeeping, not PRAM work)
        for (j, ids) in problems.iter().enumerate() {
            match sols[j] {
                Sol::Pending => {
                    // keep as-is for the next level under its old number;
                    // park it at slot 2j (left child slot)
                    next_lists[2 * j] = ids.clone();
                }
                Sol::Retire => {}
                Sol::Bridge { .. } => {
                    for &i in ids {
                        let v = shm.get(prob, i);
                        if v != EMPTY {
                            next_lists[v as usize].push(i);
                        }
                    }
                }
            }
        }
        // renumber densely and rewrite problem numbers (one step)
        let mut new_problems: Vec<Vec<usize>> = Vec::new();
        let mut remap: Vec<i64> = vec![EMPTY; next_lists.len()];
        for (slot, lst) in next_lists.into_iter().enumerate() {
            if lst.len() >= 2 {
                remap[slot] = new_problems.len() as i64;
                new_problems.push(lst);
            } else if lst.len() == 1 {
                remap[slot] = -2; // singleton: retire (hull vertex)
            }
        }
        let remap_ref = &remap;
        let still: Vec<usize> = problems.iter().flatten().copied().collect();
        m.step(shm, &still, |ctx| {
            let i = ctx.pid;
            let v = ctx.read(prob, i);
            if v == EMPTY {
                return;
            }
            let r = remap_ref[v as usize];
            ctx.write(prob, i, if r == -2 { EMPTY } else { r });
        });
        problems = new_problems;

        // ---- step 3: phase bookkeeping ----------------------------------
        m.metrics.begin_phase("compact");
        level += 1;
        level_in_phase += 1;
        if level_in_phase >= levels_per_phase {
            level_in_phase = 0;
            trace.phases += 1;
            // parallel prefix sum over the problem-id space (the paper's
            // compaction) — executed, O(log) steps
            let count = shm.scope(|shm| {
                let pflags = shm.alloc("uns.pflags", problems.len().max(1), 0);
                for j in 0..problems.len() {
                    shm.host_set(pflags, j, 1);
                }
                let (_, count) = compact_indices(m, shm, pflags);
                count
            });
            let l = edges.len() + count;
            trace.l_history.push(l);
            if l >= fallback_threshold {
                run_fallback(m, shm, points, &problems, &mut fallback_edges, &mut trace);
                break 'outer;
            }
        }
    }
    m.metrics.end_phase();
    trace.probe_edges = edges.len();

    // ---- assembly ---------------------------------------------------------
    let mut chain: Vec<usize> = Vec::new();
    for &(u, v) in edges.iter().chain(fallback_edges.iter()) {
        chain.push(u);
        chain.push(v);
    }
    if chain.is_empty() {
        // no edges at all: single point / single column input
        let top = (0..n)
            .max_by(|&a, &b| points[a].cmp_xy(&points[b]))
            .unwrap();
        let hull = UpperHull::new(vec![top]);
        return (
            HullOutput {
                hull,
                edge_above: vec![usize::MAX; n],
            },
            trace,
        );
    }
    chain.sort_by(|&a, &b| points[a].cmp_xy(&points[b]));
    chain.dedup();
    super::merge::strictify(points, &mut chain);
    let hull = UpperHull::new(chain);

    // map probe edges to final (strictified) edge indices; then one step
    // where every point resolves its pointer (dead points translate their
    // recorded edge, survivors/vertices take the covering edge)
    let mut edge_map: Vec<i64> = vec![EMPTY; edges.len()];
    for (e, &(u, v)) in edges.iter().enumerate() {
        let xm = (points[u].x + points[v].x) / 2.0;
        if let Some(f) = final_edge_over(points, &hull, xm) {
            edge_map[e] = f as i64;
        }
    }
    m.charge(1, edges.len() as u64 + n as u64);
    let mut edge_above = vec![usize::MAX; n];
    for i in 0..n {
        let rec = shm.get(above, i);
        if rec != EMPTY {
            let f = edge_map[rec as usize];
            if f != EMPTY {
                edge_above[i] = f as usize;
                continue;
            }
        }
        if let Some(f) = final_edge_over(points, &hull, points[i].x) {
            edge_above[i] = f;
        }
    }
    (HullOutput { hull, edge_above }, trace)
}

/// Solve one subproblem: random vote for the splitter, then in-place
/// bridge finding. Emits the edge into `edges` on success.
fn solve_problem(
    child: &mut Machine,
    scratch: &mut Shm,
    points: &[Point2],
    xkeys: &[i64],
    ids: &[usize],
    params: &UnsortedParams,
    edges: &mut Vec<(usize, usize)>,
) -> Sol {
    if ids.len() <= 1 {
        return Sol::Retire;
    }
    let universe = points.len();
    let maxx = combine_max_x(child, scratch, xkeys, ids);
    let mut x0 = match params.splitter {
        SplitterPolicy::RandomVote => {
            // random vote (Corollary 3.1)
            let Some(s) =
                ipch_inplace::vote::random_vote(child, scratch, ids, universe, params.vote_k, 4)
            else {
                return Sol::Pending;
            };
            points[s].x
        }
        SplitterPolicy::MidExtent => {
            let minx = combine_min_x(child, scratch, xkeys, ids);
            (minx + maxx) / 2.0
        }
    };
    // splitter in the rightmost column? (one Combining-Max step)
    if x0 >= maxx {
        // probe the edge *arriving* at the rightmost column instead
        let Some(second) = combine_max_x_below(child, scratch, xkeys, ids, maxx) else {
            return Sol::Retire; // single column: top is a hull vertex
        };
        x0 = (second + maxx) / 2.0;
    }
    match find_bridge_inplace(child, scratch, points, ids, x0, &params.ib) {
        Some((b, _)) => {
            let edge = edges.len();
            edges.push((b.left, b.right));
            Sol::Bridge {
                a: b.left,
                b: b.right,
                edge,
                lchild: 0,
                rchild: 0,
            }
        }
        None => Sol::Pending,
    }
}

/// Sweeping oracle: brute-force for small problems (the paper's n^{3/4}
/// processors cover any whp-failing problem), generous-budget retry for
/// improbably-large failures.
fn sweep_problem(
    child: &mut Machine,
    scratch: &mut Shm,
    points: &[Point2],
    xkeys: &[i64],
    ids: &[usize],
    params: &UnsortedParams,
    edges: &mut Vec<(usize, usize)>,
) -> Sol {
    if ids.len() <= 1 {
        return Sol::Retire;
    }
    let maxx = combine_max_x(child, scratch, xkeys, ids);
    let Some(second) = combine_max_x_below(child, scratch, xkeys, ids, maxx) else {
        return Sol::Retire;
    };
    // deterministic splitter: the middle of the problem's x-extent
    let minx = combine_min_x(child, scratch, xkeys, ids);
    let x0 = (minx + maxx) / 2.0;
    let x0 = if x0 >= maxx {
        (second + maxx) / 2.0
    } else {
        x0
    };
    let b: Option<Bridge> = if ids.len() <= 512 {
        bridge_brute(child, scratch, points, ids, x0)
    } else {
        let retry = IbConfig {
            max_rounds: 64,
            ..params.ib
        };
        find_bridge_inplace(child, scratch, points, ids, x0, &retry).map(|(b, _)| b)
    };
    match b {
        Some(b) => {
            let edge = edges.len();
            edges.push((b.left, b.right));
            Sol::Bridge {
                a: b.left,
                b: b.right,
                edge,
                lchild: 0,
                rchild: 0,
            }
        }
        None => Sol::Pending,
    }
}

// The extent reductions run over the precomputed SoA key column
// (`ipch_geom::soa::x_keys`): the kernel closure is a dense i64 load, and
// the reduced key decodes back to the bit-identical coordinate via
// `f64_from_key` — no host-side rescan of the id list.

fn combine_max_x(m: &mut Machine, shm: &mut Shm, xkeys: &[i64], ids: &[usize]) -> f64 {
    let key = shm.scope(|shm| {
        let cell = shm.alloc("uns.maxx", 1, i64::MIN);
        m.kernel_reduce(shm, ids, ReduceOp::Max, cell, 0, |_, i| Some(xkeys[i]));
        shm.get(cell, 0)
    });
    f64_from_key(key)
}

fn combine_min_x(m: &mut Machine, shm: &mut Shm, xkeys: &[i64], ids: &[usize]) -> f64 {
    let key = shm.scope(|shm| {
        let cell = shm.alloc("uns.minx", 1, i64::MAX);
        m.kernel_reduce(shm, ids, ReduceOp::Min, cell, 0, |_, i| Some(xkeys[i]));
        shm.get(cell, 0)
    });
    f64_from_key(key)
}

/// Max x strictly below `below`; `None` if the problem is a single column.
fn combine_max_x_below(
    m: &mut Machine,
    shm: &mut Shm,
    xkeys: &[i64],
    ids: &[usize],
    below: f64,
) -> Option<f64> {
    // strict monotonicity of the key mapping: x < below ⟺ key(x) < key(below)
    let below_key = f64_key(below);
    let key = shm.scope(|shm| {
        let cell = shm.alloc("uns.max2", 1, i64::MIN);
        m.kernel_reduce(shm, ids, ReduceOp::Max, cell, 0, |_, i| {
            if xkeys[i] < below_key {
                Some(xkeys[i])
            } else {
                None
            }
        });
        shm.get(cell, 0)
    });
    if key == i64::MIN {
        return None;
    }
    Some(f64_from_key(key))
}

fn run_fallback(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    problems: &[Vec<usize>],
    fallback_edges: &mut Vec<(usize, usize)>,
    trace: &mut UnsortedTrace,
) {
    trace.fallback = true;
    let actives: Vec<usize> = problems.iter().flatten().copied().collect();
    if actives.len() < 2 {
        return;
    }
    let sub: Vec<Point2> = actives.iter().map(|&i| points[i]).collect();
    let out = upper_hull_dac(m, shm, &sub, false);
    for w in out.hull.vertices.windows(2) {
        fallback_edges.push((actives[w[0]], actives[w[1]]));
    }
}

fn final_edge_over(points: &[Point2], hull: &UpperHull, x: f64) -> Option<usize> {
    let vs = &hull.vertices;
    if vs.len() < 2 || x < points[vs[0]].x || x > points[vs[vs.len() - 1]].x {
        return None;
    }
    let (mut lo, mut hi) = (0usize, vs.len() - 1);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if points[vs[mid]].x <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{
        circle_plus_interior, collinear_on_line, grid, on_circle, uniform_disk, uniform_square,
    };
    use ipch_geom::hull_chain::verify_upper_hull;

    fn run(
        points: &[Point2],
        seed: u64,
        params: &UnsortedParams,
    ) -> (HullOutput, UnsortedTrace, Machine) {
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let (out, trace) = upper_hull_unsorted(&mut m, &mut shm, points, params);
        (out, trace, m)
    }

    /// Regression for the sweep/election fixes: the whole algorithm (bridge
    /// elections included) must satisfy its declared contract — races may
    /// be benign or policy-deterministic, never tiebreak-seed-dependent.
    #[test]
    fn analyzer_pins_contract() {
        use ipch_pram::AnalyzeConfig;
        let pts = uniform_disk(512, 7);
        let mut m = Machine::new(3);
        m.enable_analysis(AnalyzeConfig::default());
        let mut shm = Shm::new();
        shm.enable_shadow(true);
        upper_hull_unsorted(&mut m, &mut shm, &pts, &UnsortedParams::default());
        let r = m.analysis_report().unwrap();
        assert_eq!(r.contract.unwrap().algorithm, "hull2d/unsorted");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.seed_dependent_races, 0);
        assert_eq!(r.unconfirmed_arbitrary_races, 0);
        assert_eq!(r.uninit_reads, 0);
        assert!(r.deterministic_races > 0, "elections should be exercised");
    }

    #[test]
    fn matches_oracle_random() {
        for seed in 0..6 {
            let pts = uniform_disk(1000, seed);
            let (out, _, _) = run(&pts, seed, &UnsortedParams::default());
            verify_upper_hull(&pts, &out.hull).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(out.hull, UpperHull::of(&pts), "seed {seed}");
            out.verify_pointers(&pts)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn degenerate_and_tiny_inputs() {
        let cases: Vec<Vec<Point2>> = vec![
            vec![],
            vec![Point2::new(1.0, 1.0)],
            vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)],
            vec![Point2::new(0.0, 0.0), Point2::new(0.0, 1.0)], // one column
            collinear_on_line(50, -1.0, 2.0, 1),
            grid(100),
            ipch_geom::generators::duplicated(
                &[
                    Point2::new(0.0, 0.0),
                    Point2::new(2.0, 1.0),
                    Point2::new(4.0, 0.0),
                ],
                30,
            ),
        ];
        for (i, pts) in cases.iter().enumerate() {
            let (out, _, _) = run(pts, i as u64 + 10, &UnsortedParams::default());
            verify_upper_hull(pts, &out.hull).unwrap_or_else(|e| panic!("case {i}: {e}"));
            // compare by coordinates: duplicate inputs admit several id
            // choices for the same geometric hull
            let got: Vec<Point2> = out.hull.vertices.iter().map(|&v| pts[v]).collect();
            let expect: Vec<Point2> = UpperHull::of(pts)
                .vertices
                .iter()
                .map(|&v| pts[v])
                .collect();
            assert_eq!(got, expect, "case {i}");
            out.verify_pointers(pts)
                .unwrap_or_else(|e| panic!("case {i}: {e}"));
        }
    }

    #[test]
    fn output_sensitive_work() {
        // fixed n, growing h: total work should grow like log h (before the
        // fallback saturates it)
        let n = 8192;
        let mut works = Vec::new();
        for h in [8usize, 64] {
            let pts = circle_plus_interior(h, n, 3);
            let (out, _, m) = run(&pts, 5, &UnsortedParams::default());
            assert_eq!(out.hull, UpperHull::of(&pts), "h={h}");
            works.push(m.metrics.total_work());
        }
        // 8× more hull edges should cost well under 8× the work
        assert!(works[1] < 4 * works[0], "not output-sensitive: {works:?}");
    }

    #[test]
    fn large_h_triggers_fallback() {
        let pts = on_circle(4096, 7);
        let (out, trace, _) = run(&pts, 2, &UnsortedParams::default());
        assert!(trace.fallback, "h = n must certify and fall back");
        assert_eq!(out.hull, UpperHull::of(&pts));
        out.verify_pointers(&pts).unwrap();
    }

    #[test]
    fn small_h_avoids_fallback() {
        let pts = circle_plus_interior(8, 4096, 9);
        let (out, trace, _) = run(&pts, 3, &UnsortedParams::default());
        assert!(!trace.fallback, "h = 8 must finish by probing");
        assert_eq!(out.hull, UpperHull::of(&pts));
    }

    #[test]
    fn logarithmic_levels() {
        for n in [1024usize, 8192] {
            let pts = uniform_square(n, 11);
            let (_, trace, _) = run(&pts, 4, &UnsortedParams::default());
            let cap = 3 * (n as f64).log2() as usize + 8;
            assert!(
                trace.levels.len() <= cap,
                "n={n}: {} levels",
                trace.levels.len()
            );
        }
    }

    #[test]
    fn subproblem_sizes_decay() {
        // Lemma 5.1 flavor: max subproblem size decays geometrically
        let pts = uniform_disk(8192, 13);
        let (_, trace, _) = run(&pts, 6, &UnsortedParams::default());
        if trace.levels.len() >= 7 {
            let early = trace.levels[0].max_size as f64;
            let later = trace.levels[6].max_size as f64;
            assert!(later < early * 0.8, "no decay: {early} -> {later}");
        }
    }

    #[test]
    fn sweeping_ablation_still_correct() {
        let pts = uniform_disk(2000, 17);
        let params = UnsortedParams {
            disable_sweeping: true,
            ..UnsortedParams::default()
        };
        let (out, _, _) = run(&pts, 7, &params);
        assert_eq!(out.hull, UpperHull::of(&pts));
    }

    #[test]
    fn phase_breakdown_recorded() {
        let pts = uniform_disk(800, 21);
        let (_, _, m) = run(&pts, 1, &UnsortedParams::default());
        let probe = m.metrics.phase("probe").expect("probe phase");
        assert!(probe.steps > 0);
        let split = m.metrics.phase("split").expect("split phase");
        assert!(split.steps > 0);
        // phases partition the totals
        let sum: u64 = m.metrics.phases.iter().map(|p| p.steps).sum();
        assert_eq!(sum, m.metrics.steps);
    }

    #[test]
    fn mid_extent_splitter_is_correct() {
        for seed in 0..4 {
            let pts = uniform_disk(1200, seed + 30);
            let params = UnsortedParams {
                splitter: SplitterPolicy::MidExtent,
                ..UnsortedParams::default()
            };
            let (out, _, _) = run(&pts, seed, &params);
            assert_eq!(out.hull, UpperHull::of(&pts), "seed {seed}");
            out.verify_pointers(&pts).unwrap();
        }
    }

    #[test]
    fn forced_failures_swept() {
        let pts = uniform_disk(3000, 19);
        let params = UnsortedParams {
            ib: IbConfig {
                max_rounds: 0,
                ..IbConfig::default()
            },
            ..UnsortedParams::default()
        };
        let (out, trace, _) = run(&pts, 8, &params);
        assert!(trace.swept > 0);
        assert_eq!(out.hull, UpperHull::of(&pts));
    }
}
