//! The folklore time/processor trade-off (paper Lemma 2.4).
//!
//! *For any integer k ≥ 1, one can find the upper hull of n points in the
//! plane in time O(k) using n^{1+1/k} processors, deterministically, on a
//! CRCW PRAM.* The paper defers the construction to its (never published)
//! full version; we supply the standard one: a ⌈n^{1/(2k)}⌉-ary merge tree
//! over the sorted points — 2k levels of group merges, each level O(1)
//! time ([`crate::parallel::merge`]) with Σverts·g² ≤ n^{1+1/k} processors.
//!
//! This is the deterministic engine the presorted O(1)-time algorithm
//! (§2.2) runs on its sub-log³n nodes with k = 3.

use ipch_geom::{Point2, UpperHull};
use ipch_pram::{Machine, ModelClass, ModelContract, RaceExpectation, Shm};

use super::merge::merge_groups;
use crate::{assign_edges_pram, HullOutput};

/// Concurrency contract: Common-CRCW — the merge-tree steps only race on
/// constant kill/mark writes, so concurrent writers always agree.
pub const FOLKLORE_CONTRACT: ModelContract = ModelContract {
    algorithm: "hull2d/folklore",
    class: ModelClass::Crcw,
    races: RaceExpectation::SameValue,
};

/// Symbolic step structure of [`upper_hull_folklore`] for the static
/// checker ([`ipch_pram::verify`]): the column-top dedup scatter, then the
/// merge-tree survival template — (Σ vertices)·g² processors per level,
/// each CombineOr-ing a constant kill mark into the ≤ n slot table
/// (`pid / g²` with runtime `g`, so the write is declared by its bounds).
/// Verified at the maximal level size; smaller levels share the shape.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    use ipch_pram::WritePolicy;
    let mut p = AlgorithmPlan::new(FOLKLORE_CONTRACT);
    let tops = p.array("hull2d.tops", Affine::n());
    let dead = p.array("merge.dead", Affine::n());
    p.step(
        StepPlan::new("column-tops", Affine::n(), WritePolicy::Arbitrary)
            .write(tops, IndexSet::Exact(Affine::pid())),
    );
    // survival level: ≤ n slots × g² pairs of group hulls, g ≤ n
    p.step(
        StepPlan::new("merge-survive", Affine::n3(), WritePolicy::CombineOr).write_uniform(
            dead,
            IndexSet::Within {
                lo: Affine::k(0),
                hi: Affine::n().minus(1),
            },
        ),
    );
    p
}

/// Upper hull of the contiguous presorted slice `ids` (indices into
/// `points`, which must be x-sorted along `ids`). Runs in O(k) executed +
/// charged steps with ≤ |ids|^{1+1/k} work per step.
pub fn upper_hull_folklore(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    ids: &[usize],
    k: usize,
) -> UpperHull {
    m.declare_contract(&FOLKLORE_CONTRACT);
    assert!(k >= 1);
    let ids = crate::column_tops_pram(m, shm, points, ids);
    let n = ids.len();
    if n == 0 {
        return UpperHull::new(vec![]);
    }
    let levels = 2 * k;
    let g = ((n as f64).powf(1.0 / levels as f64).ceil() as usize).max(2);
    let mut hulls: Vec<Vec<usize>> = ids.iter().map(|&i| vec![i]).collect();
    while hulls.len() > 1 {
        hulls = merge_groups(m, shm, points, &hulls, g);
    }
    UpperHull::new(hulls.pop().unwrap_or_default())
}

/// Lemma 2.4 on the whole (presorted) input, with per-point edge pointers.
pub fn upper_hull_folklore_full(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    k: usize,
) -> HullOutput {
    let ids: Vec<usize> = (0..points.len()).collect();
    let hull = upper_hull_folklore(m, shm, points, &ids, k);
    let edge_above = assign_edges_pram(m, shm, points, &hull);
    HullOutput { hull, edge_above }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{circle_plus_interior, uniform_disk};
    use ipch_geom::hull_chain::verify_upper_hull;
    use ipch_geom::point::sorted_by_x;

    fn sorted(n: usize, seed: u64) -> Vec<Point2> {
        sorted_by_x(&uniform_disk(n, seed))
    }

    #[test]
    fn matches_oracle_for_various_k() {
        for k in 1..=4 {
            for seed in 0..4 {
                let pts = sorted(300, seed);
                let mut m = Machine::new(seed);
                let mut shm = Shm::new();
                let ids: Vec<usize> = (0..pts.len()).collect();
                let h = upper_hull_folklore(&mut m, &mut shm, &pts, &ids, k);
                verify_upper_hull(&pts, &h).unwrap_or_else(|e| panic!("k={k} seed={seed}: {e}"));
                assert_eq!(h, UpperHull::of(&pts), "k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn time_scales_with_k_not_n() {
        // steps for fixed k must be bounded regardless of n
        for k in [1usize, 2, 3] {
            let mut steps = Vec::new();
            for n in [256usize, 1024, 4096] {
                let pts = sorted(n, 9);
                let mut m = Machine::new(1);
                let mut shm = Shm::new();
                let ids: Vec<usize> = (0..n).collect();
                upper_hull_folklore(&mut m, &mut shm, &pts, &ids, k);
                steps.push(m.metrics.total_steps());
            }
            // merge-tree depth is fixed by k: step counts equal across n
            assert!(
                steps.windows(2).all(|w| w[1] <= w[0] + 3),
                "k={k}: steps {steps:?} grow with n"
            );
        }
    }

    #[test]
    fn work_processor_tradeoff() {
        // larger k ⇒ more time, less peak work per step
        let n = 4096;
        let pts = sorted(n, 3);
        let ids: Vec<usize> = (0..n).collect();
        let mut peaks = Vec::new();
        let mut steps = Vec::new();
        for k in [1usize, 2, 4] {
            let mut m = Machine::new(2);
            let mut shm = Shm::new();
            upper_hull_folklore(&mut m, &mut shm, &pts, &ids, k);
            peaks.push(m.metrics.peak_processors);
            steps.push(m.metrics.total_steps());
        }
        assert!(steps[0] < steps[2], "more k, more steps: {steps:?}");
        assert!(peaks[0] > peaks[2], "more k, smaller peak: {peaks:?}");
    }

    #[test]
    fn hull_heavy_input() {
        let pts = sorted_by_x(&circle_plus_interior(64, 400, 5));
        let mut m = Machine::new(4);
        let mut shm = Shm::new();
        let ids: Vec<usize> = (0..pts.len()).collect();
        let h = upper_hull_folklore(&mut m, &mut shm, &pts, &ids, 3);
        assert_eq!(h, UpperHull::of(&pts));
    }

    #[test]
    fn slice_semantics_and_full_output() {
        let pts = sorted(200, 6);
        let mut m = Machine::new(5);
        let mut shm = Shm::new();
        // middle slice only
        let ids: Vec<usize> = (50..150).collect();
        let h = upper_hull_folklore(&mut m, &mut shm, &pts, &ids, 2);
        let sub: Vec<Point2> = pts[50..150].to_vec();
        let expect: Vec<usize> = UpperHull::of(&sub)
            .vertices
            .iter()
            .map(|&i| i + 50)
            .collect();
        assert_eq!(h.vertices, expect);

        let out = upper_hull_folklore_full(&mut m, &mut shm, &pts, 2);
        out.verify_pointers(&pts).unwrap();
    }

    #[test]
    fn tiny_inputs() {
        let mut m = Machine::new(7);
        let mut shm = Shm::new();
        let empty: Vec<usize> = vec![];
        assert!(upper_hull_folklore(&mut m, &mut shm, &[], &empty, 2).is_empty());
        let one = vec![Point2::new(0.0, 0.0)];
        let h = upper_hull_folklore(&mut m, &mut shm, &one, &[0], 2);
        assert_eq!(h.vertices, vec![0]);
    }
}
