//! Fused batched upper hulls: many small instances, one machine run.
//!
//! The serving runtime coalesces small same-algorithm requests into one
//! batch (see `ipch-service`). Running each member through the full
//! supervised pipeline costs a per-member *step overhead* that dwarfs the
//! actual geometry at small `n` — the simulator pays a fixed synchronous
//! per-step cost, and the unsorted algorithm takes O(log log n)-ish rounds
//! *per member*. This module instead elects every member's hull in a
//! **constant number of fused steps** over the union of the members' pair
//! spaces, so the per-step cost is amortized across the whole batch.
//!
//! The election is the gift-wrapping observation specialized to upper
//! hulls: from an upper-hull vertex `u`, the next hull vertex is the point
//! of **maximum slope** among points strictly right of `u` (slope ties →
//! farthest x, which skips interior collinear points). Three combining
//! scatter rounds over the Σ nᵍ² pair space compute, for *every* point at
//! once: (1) its best successor slope key, (2) the farthest x among
//! slope-tied candidates, (3) the unique successor id — plus, in a tail
//! pid range, each member's start vertex (topmost point of the leftmost
//! column). Host code then walks each member's successor chain, charging
//! the pointer-jumping bound a PRAM would pay to extract the chains.
//!
//! Slopes are compared as f64 — rounding could in principle elect a wrong
//! successor. That is why every member's chain is certified by
//! [`verify_upper_hull`] before it is returned: a certified upper hull is
//! *unique* (strict x-increase, strict turns, full coverage), so a batched
//! result that passes is bit-identical to what any unbatched certified run
//! returns. A member whose chain fails certification gets a typed error
//! and the caller demotes it to a solo supervised run; its siblings are
//! unaffected.

use ipch_geom::batch::ConcatPoints2;
use ipch_geom::hull_chain::verify_upper_hull;
use ipch_geom::soa::f64_key;
use ipch_geom::validate::validate_points2;
use ipch_geom::UpperHull;
use ipch_pram::{
    Machine, ModelClass, ModelContract, RaceExpectation, RunError, Shm, WritePolicy, EMPTY,
};

/// Algorithm name used in typed errors from the fused batch path.
pub const BATCH_ALG: &str = "hull2d/batch";

/// Concurrency contract: combining-CRCW. Rounds 1–2 use `CombineMax`
/// (deterministic under any writer interleaving); round 3's writers are
/// unique per cell (successor and start elections have exactly one
/// matching candidate once ties are broken by farthest-x / topmost-y over
/// distinct points).
pub const BATCH_CONTRACT: ModelContract = ModelContract {
    algorithm: BATCH_ALG,
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// One member's geometry for the fused election.
struct ActiveMember {
    /// Index into the caller's batch (and the result vector).
    g: usize,
    /// Start of the member's points in the concatenation.
    off: usize,
    /// Member size (≥ 2; smaller members are resolved host-side).
    n: usize,
}

/// Symbolic step structure of [`upper_hulls_batch`] for the static
/// checker ([`ipch_pram::verify`]): three fused election rounds over the
/// pair space plus member tails (≤ n² + n processors against `n` total
/// batch points), writing best-slope / farthest-x / successor cells
/// through host-side member offset tables — data-dependent targets
/// declared by their bounds, resolved by Combine and Priority rules
/// inside the Deterministic envelope.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    let mut p = AlgorithmPlan::new(BATCH_CONTRACT);
    let slope = p.array("batch.slope", Affine::n());
    let bestx = p.array("batch.x", Affine::n());
    let succ = p.array("batch.succ", Affine::n());
    let negminx = p.array("batch.negminx", Affine::n());
    let start = p.array("batch.start", Affine::n());
    let pts = IndexSet::Within {
        lo: Affine::k(0),
        hi: Affine::n().minus(1),
    };
    let pairs_and_tails = Affine::n2().add(Affine::n());
    p.step(
        StepPlan::new("bid-slope", pairs_and_tails, WritePolicy::CombineMax)
            .write(slope, pts)
            .write(negminx, pts),
    );
    p.step(StepPlan::new("bid-x", pairs_and_tails, WritePolicy::CombineMax).write(bestx, pts));
    p.step(
        StepPlan::new("elect-succ", pairs_and_tails, WritePolicy::PriorityMin)
            .write(succ, pts)
            .write(start, pts),
    );
    p
}

/// Upper hulls of every batch member in O(1) fused steps plus a charged
/// chain extraction, Σ nᵍ² work.
///
/// Returns one result per member, in member order. Vertex ids are
/// **member-local** (indices into `batch.member(g)`), matching what an
/// unbatched run on that member's points alone would produce. Each `Ok`
/// hull has passed [`verify_upper_hull`] against its member's points;
/// errors are typed ([`RunError::InvalidInput`] for malformed members,
/// [`RunError::Verify`] when the elected chain fails its certificate) and
/// never poison sibling members.
pub fn upper_hulls_batch(
    m: &mut Machine,
    shm: &mut Shm,
    batch: &ConcatPoints2,
) -> Vec<Result<UpperHull, RunError>> {
    m.declare_contract(&BATCH_CONTRACT);
    let b = batch.member_count();
    let mut results: Vec<Option<Result<UpperHull, RunError>>> = (0..b).map(|_| None).collect();

    // Partition members: invalid inputs get typed errors now (mirroring the
    // validate-before-machine contract of the unbatched entries), trivial
    // members resolve immediately, the rest join the fused election.
    let mut active: Vec<ActiveMember> = Vec::new();
    for (g, result) in results.iter_mut().enumerate() {
        let pts = batch.member(g);
        if let Err(e) = validate_points2(pts) {
            *result = Some(Err(RunError::invalid_input(BATCH_ALG, e)));
            continue;
        }
        match pts.len() {
            0 => *result = Some(Ok(UpperHull::new(vec![]))),
            1 => *result = Some(Ok(UpperHull::new(vec![0]))),
            n => active.push(ActiveMember {
                g,
                off: batch.member_range(g).start,
                n,
            }),
        }
    }
    if active.is_empty() {
        return results.into_iter().map(|r| r.unwrap()).collect();
    }

    // Pair space: member k owns pids pair_base[k]..pair_base[k+1], a dense
    // n_k × n_k block decoded by div/mod (same shape as the brute oracle's
    // pair space, concatenated across members). A tail range of Σ n_k point
    // pids runs the per-member start election in the same steps.
    let a = active.len();
    let mut pair_base = Vec::with_capacity(a + 1);
    let mut pt_base = Vec::with_capacity(a + 1);
    pair_base.push(0usize);
    pt_base.push(0usize);
    for am in &active {
        pair_base.push(pair_base.last().unwrap() + am.n * am.n);
        pt_base.push(pt_base.last().unwrap() + am.n);
    }
    let npairs = *pair_base.last().unwrap();
    let npts = *pt_base.last().unwrap();
    let soa = batch.soa();
    let (xs, ys) = (soa.xs(), soa.ys());

    // pid → (member slot, local residue). Pair pids binary-search
    // `pair_base`; tail pids search `pt_base`.
    let locate = |base: &[usize], v: usize| -> (usize, usize) {
        let k = match base.binary_search(&v) {
            Ok(mut k) => {
                while base[k + 1] == v {
                    k += 1;
                }
                k
            }
            Err(k) => k - 1,
        };
        (k, v - base[k])
    };

    let hulls: Vec<Vec<usize>> = shm.scope(|shm| {
        let best_slope = shm.alloc("batch.slope", npts, i64::MIN);
        let best_x = shm.alloc("batch.x", npts, i64::MIN);
        let succ = shm.alloc("batch.succ", npts, EMPTY);
        let negminx = shm.alloc("batch.negminx", a, i64::MIN);
        let topy = shm.alloc("batch.topy", a, i64::MIN);
        let start = shm.alloc("batch.start", a, EMPTY);

        // Round 1: every ordered pair (i, j) with x_j > x_i bids its slope
        // key for i's successor slot; tail pids elect each member's
        // minimum x (negated key under CombineMax).
        m.kernel_scatter_with_policy(shm, 0..npairs + npts, WritePolicy::CombineMax, |_, pid| {
            if pid < npairs {
                let (k, p) = locate(&pair_base, pid);
                let am = &active[k];
                let (i, j) = (am.off + p / am.n, am.off + p % am.n);
                if xs[j] <= xs[i] {
                    return None;
                }
                let slope = (ys[j] - ys[i]) / (xs[j] - xs[i]);
                Some((best_slope, pt_base[k] + p / am.n, f64_key(slope)))
            } else {
                let (k, i) = locate(&pt_base, pid - npairs);
                Some((negminx, k, -f64_key(xs[active[k].off + i])))
            }
        });
        let negminx_h: Vec<i64> = (0..a).map(|k| shm.get(negminx, k)).collect();
        let slope_h: Vec<i64> = (0..npts).map(|i| shm.get(best_slope, i)).collect();

        // Round 2: among slope-tied candidates, elect the farthest x (this
        // skips interior collinear points, keeping the chain strict); tail
        // pids elect the topmost y within each member's leftmost column.
        m.kernel_scatter_with_policy(shm, 0..npairs + npts, WritePolicy::CombineMax, |_, pid| {
            if pid < npairs {
                let (k, p) = locate(&pair_base, pid);
                let am = &active[k];
                let (i, j) = (am.off + p / am.n, am.off + p % am.n);
                if xs[j] <= xs[i] {
                    return None;
                }
                let slope = (ys[j] - ys[i]) / (xs[j] - xs[i]);
                if f64_key(slope) != slope_h[pt_base[k] + p / am.n] {
                    return None;
                }
                Some((best_x, pt_base[k] + p / am.n, f64_key(xs[j])))
            } else {
                let (k, i) = locate(&pt_base, pid - npairs);
                let gi = active[k].off + i;
                (-f64_key(xs[gi]) == negminx_h[k]).then(|| (topy, k, f64_key(ys[gi])))
            }
        });
        let bestx_h: Vec<i64> = (0..npts).map(|i| shm.get(best_x, i)).collect();
        let topy_h: Vec<i64> = (0..a).map(|k| shm.get(topy, k)).collect();

        // Round 3: the unique candidate matching both the slope and the
        // farthest-x keys writes its id as i's successor (distinct points
        // ⇒ equal slope + equal x has exactly one solution); the unique
        // (min-x, top-y) point writes itself as the member's start.
        m.kernel_scatter_with_policy(shm, 0..npairs + npts, WritePolicy::PriorityMin, |_, pid| {
            if pid < npairs {
                let (k, p) = locate(&pair_base, pid);
                let am = &active[k];
                let (li, lj) = (p / am.n, p % am.n);
                let (i, j) = (am.off + li, am.off + lj);
                if xs[j] <= xs[i] {
                    return None;
                }
                let slot = pt_base[k] + li;
                let slope = (ys[j] - ys[i]) / (xs[j] - xs[i]);
                (f64_key(slope) == slope_h[slot] && f64_key(xs[j]) == bestx_h[slot])
                    .then_some((succ, slot, lj as i64))
            } else {
                let (k, i) = locate(&pt_base, pid - npairs);
                let gi = active[k].off + i;
                (-f64_key(xs[gi]) == negminx_h[k] && f64_key(ys[gi]) == topy_h[k])
                    .then_some((start, k, i as i64))
            }
        });

        // Chain extraction: walk each member's successor list from its
        // start. Successor x strictly increases, so each walk takes at
        // most n_k hops; a PRAM extracts all chains by pointer jumping in
        // O(log max_n) steps and O(Σ n_k · log max_n) work, which we
        // charge analytically (same convention as the charged Cole sort).
        let max_n = active.iter().map(|am| am.n).max().unwrap();
        let logn = (usize::BITS - (max_n - 1).leading_zeros()).max(1) as u64;
        m.charge(logn, npts as u64 * logn);

        (0..a)
            .map(|k| {
                let n = active[k].n;
                let mut cur = shm.get(start, k);
                let mut chain = Vec::new();
                while cur != EMPTY && chain.len() <= n {
                    chain.push(cur as usize);
                    cur = shm.get(succ, pt_base[k] + cur as usize);
                }
                chain
            })
            .collect()
    });

    // Certify every elected chain against its member's own points. A pass
    // pins the unique canonical hull; a failure demotes just this member.
    for (k, chain) in hulls.into_iter().enumerate() {
        let am = &active[k];
        let pts = batch.member(am.g);
        let hull = UpperHull::new(chain);
        results[am.g] = Some(match verify_upper_hull(pts, &hull) {
            Ok(()) => Ok(hull),
            Err(e) => Err(RunError::Verify {
                algorithm: BATCH_ALG,
                detail: format!("member {}: {e}", am.g),
            }),
        });
    }
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{collinear_on_line, grid, uniform_disk, uniform_square};
    use ipch_geom::Point2;

    #[test]
    fn batch_matches_oracle_per_member() {
        let members: Vec<Vec<Point2>> = vec![
            uniform_disk(24, 1),
            uniform_square(48, 2),
            grid(25),
            collinear_on_line(12, 0.5, 1.0, 3),
            uniform_disk(96, 4),
        ];
        let slices: Vec<&[Point2]> = members.iter().map(|v| v.as_slice()).collect();
        let cat = ConcatPoints2::from_members(&slices);
        let mut m = Machine::new(7);
        let mut shm = Shm::new();
        let out = upper_hulls_batch(&mut m, &mut shm, &cat);
        for (g, r) in out.iter().enumerate() {
            let h = r.as_ref().unwrap();
            assert_eq!(*h, UpperHull::of(&members[g]), "member {g}");
        }
        assert_eq!(m.metrics.steps, 3, "constant fused step count");
    }

    #[test]
    fn constant_steps_regardless_of_batch_size() {
        for b in [1usize, 4, 16] {
            let members: Vec<Vec<Point2>> =
                (0..b).map(|i| uniform_disk(32, 10 + i as u64)).collect();
            let slices: Vec<&[Point2]> = members.iter().map(|v| v.as_slice()).collect();
            let cat = ConcatPoints2::from_members(&slices);
            let mut m = Machine::new(b as u64);
            let mut shm = Shm::new();
            let out = upper_hulls_batch(&mut m, &mut shm, &cat);
            assert!(out.iter().all(|r| r.is_ok()));
            assert_eq!(m.metrics.steps, 3, "batch of {b}");
        }
    }

    #[test]
    fn invalid_member_is_isolated() {
        let good = uniform_disk(20, 5);
        let bad = vec![Point2::new(f64::NAN, 0.0), Point2::new(1.0, 1.0)];
        let tiny = vec![Point2::new(3.0, 3.0)];
        let cat = ConcatPoints2::from_members(&[&good, &bad, &tiny]);
        let mut m = Machine::new(9);
        let mut shm = Shm::new();
        let out = upper_hulls_batch(&mut m, &mut shm, &cat);
        assert_eq!(*out[0].as_ref().unwrap(), UpperHull::of(&good));
        assert!(matches!(out[1], Err(RunError::InvalidInput { .. })));
        assert_eq!(out[2].as_ref().unwrap().vertices, vec![0]);
    }

    #[test]
    fn degenerate_members() {
        // all points in one vertical column: hull is the topmost point
        let col: Vec<Point2> = (0..6).map(|i| Point2::new(2.0, i as f64)).collect();
        let empty: Vec<Point2> = vec![];
        let pair = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        let cat = ConcatPoints2::from_members(&[&col, &empty, &pair]);
        let mut m = Machine::new(11);
        let mut shm = Shm::new();
        let out = upper_hulls_batch(&mut m, &mut shm, &cat);
        assert_eq!(out[0].as_ref().unwrap().vertices, vec![5]);
        assert!(out[1].as_ref().unwrap().vertices.is_empty());
        assert_eq!(out[2].as_ref().unwrap().vertices, vec![0, 1]);
    }

    #[test]
    fn batched_equals_solo_batches_bitwise() {
        // a batch of one must equal the member run alone (and both equal
        // the oracle): the fused election never depends on siblings
        let members: Vec<Vec<Point2>> = (0..6).map(|i| uniform_disk(40, 40 + i)).collect();
        let slices: Vec<&[Point2]> = members.iter().map(|v| v.as_slice()).collect();
        let cat = ConcatPoints2::from_members(&slices);
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        let fused = upper_hulls_batch(&mut m, &mut shm, &cat);
        for (g, pts) in members.iter().enumerate() {
            let solo_cat = ConcatPoints2::from_members(&[pts.as_slice()]);
            let mut m2 = Machine::new(2);
            let mut shm2 = Shm::new();
            let solo = upper_hulls_batch(&mut m2, &mut shm2, &solo_cat);
            assert_eq!(
                fused[g].as_ref().unwrap(),
                solo[0].as_ref().unwrap(),
                "member {g}"
            );
        }
    }
}
