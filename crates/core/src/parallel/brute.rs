//! Brute-force parallel upper hull (paper Observation 2.3).
//!
//! *It is possible to find the upper hull of n points in the plane in
//! constant time with n³ processors.* A pair (u, v) with u.x < v.x is a
//! hull edge iff every point lies on or below its line, no collinear point
//! sits strictly between the endpoints, and neither endpoint is vertically
//! dominated. One concurrent marking step over all (pair, witness) triples
//! decides all of that; the surviving pairs *are* the strict upper chain.
//!
//! This is the super-linear-processor oracle that failure sweeping (§2.3)
//! re-solves failed subproblems with.

use ipch_geom::predicates::orient2d_sign;
use ipch_geom::{Point2, UpperHull};
use ipch_pram::{Machine, ModelClass, ModelContract, RaceExpectation, Shm, WritePolicy};

use crate::{assign_edges_pram, HullOutput};

/// Concurrency contract: Common-CRCW — concurrent writers of a cell always
/// agree on the value (the only races are the constant "kill" marks).
pub const BRUTE_CONTRACT: ModelContract = ModelContract {
    algorithm: "hull2d/brute",
    class: ModelClass::Crcw,
    races: RaceExpectation::SameValue,
};

/// Symbolic step structure of [`upper_hull_brute`] for the static checker
/// ([`ipch_pram::verify`]): one CombineOr marking step over all
/// (pair, witness) triples — n³ processors each ORing a constant 1 into
/// the n²-cell pair table. Which cell a triple kills is data-dependent
/// (`pid / n`, a runtime divisor), so the write is declared by its bounds;
/// the contract already admits Common-CRCW, so bounded same-value
/// contention verifies statically.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    let mut p = AlgorithmPlan::new(BRUTE_CONTRACT);
    let bad = p.array("pbrute.bad", Affine::n2());
    p.step(
        StepPlan::new("mark", Affine::n3(), WritePolicy::CombineOr).write_uniform(
            bad,
            IndexSet::Within {
                lo: Affine::k(0),
                hi: Affine::n2().minus(1),
            },
        ),
    );
    p
}

/// Upper hull of the subset `ids` of `points` in O(1) steps and Θ(|ids|³)
/// work. Vertex ids refer to the original array.
pub fn upper_hull_brute(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    ids: &[usize],
) -> UpperHull {
    m.declare_contract(&BRUTE_CONTRACT);
    let n = ids.len();
    if n == 0 {
        return UpperHull::new(vec![]);
    }
    if n == 1 {
        return UpperHull::new(vec![ids[0]]);
    }
    let npairs = n * n;
    // marking workspace is scoped: failure sweeps re-invoke this oracle in
    // loops, and each invocation recycles the same slot
    let mut edges: Vec<(usize, usize)> = shm.scope(|shm| {
        let bad = shm.alloc("pbrute.bad", npairs, 0);
        m.kernel_scatter_with_policy(shm, 0..npairs * n, WritePolicy::CombineOr, |_, pid| {
            let p = pid / n;
            let w = pid % n;
            let (i, j) = (p / n, p % n);
            let (u, v) = (points[ids[i]], points[ids[j]]);
            if u.x >= v.x {
                return if w == 0 { Some((bad, p, 1)) } else { None };
            }
            let q = points[ids[w]];
            let s = orient2d_sign(u, v, q);
            if s > 0 {
                return Some((bad, p, 1)); // witness above the candidate edge
            }
            if s == 0 && (q.x < u.x || q.x > v.x) {
                // a contact outside the span: the true strict edge extends
                // further, so (u, v) is only a sub-segment of it
                return Some((bad, p, 1));
            }
            // vertical domination of an endpoint kills the pair
            if (q.x == u.x && q.y > u.y) || (q.x == v.x && q.y > v.y) {
                return Some((bad, p, 1));
            }
            // exact duplicate of an endpoint with a smaller id: dedupe so only
            // one copy of each edge survives
            if (q == u && ids[w] < ids[i]) || (q == v && ids[w] < ids[j]) {
                return Some((bad, p, 1));
            }
            None
        });

        let mut edges: Vec<(usize, usize)> = Vec::new();
        for p in 0..npairs {
            if shm.get(bad, p) == 0 {
                edges.push((ids[p / n], ids[p % n]));
            }
        }
        edges
    });
    if edges.is_empty() {
        // all points share one x: the hull is the topmost point
        let top = ids
            .iter()
            .copied()
            .max_by(|&a, &b| points[a].cmp_xy(&points[b]))
            .unwrap();
        return UpperHull::new(vec![top]);
    }
    edges.sort_by(|a, b| points[a.0].cmp_xy(&points[b.0]));
    let mut verts = vec![edges[0].0];
    for e in &edges {
        verts.push(e.1);
    }
    UpperHull::new(verts)
}

/// Observation 2.3 with the paper's full output convention (per-point edge
/// pointers).
pub fn upper_hull_brute_full(m: &mut Machine, shm: &mut Shm, points: &[Point2]) -> HullOutput {
    let ids: Vec<usize> = (0..points.len()).collect();
    let hull = upper_hull_brute(m, shm, points, &ids);
    let edge_above = assign_edges_pram(m, shm, points, &hull);
    HullOutput { hull, edge_above }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{collinear_on_line, grid, uniform_disk, uniform_square};
    use ipch_geom::hull_chain::verify_upper_hull;

    #[test]
    fn matches_oracle_random() {
        for seed in 0..6 {
            let pts = uniform_disk(60, seed);
            let mut m = Machine::new(seed);
            let mut shm = Shm::new();
            let ids: Vec<usize> = (0..pts.len()).collect();
            let h = upper_hull_brute(&mut m, &mut shm, &pts, &ids);
            assert_eq!(h, UpperHull::of(&pts), "seed {seed}");
            assert_eq!(m.metrics.steps, 1, "O(1) time");
        }
    }

    #[test]
    fn constant_time_superlinear_work() {
        let pts = uniform_square(80, 1);
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        let ids: Vec<usize> = (0..80).collect();
        upper_hull_brute(&mut m, &mut shm, &pts, &ids);
        assert_eq!(m.metrics.steps, 1);
        assert_eq!(m.metrics.work, 80 * 80 * 80);
    }

    #[test]
    fn degenerate_inputs() {
        let col = collinear_on_line(20, 1.0, 0.0, 2);
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        let ids: Vec<usize> = (0..20).collect();
        let h = upper_hull_brute(&mut m, &mut shm, &col, &ids);
        verify_upper_hull(&col, &h).unwrap();
        assert_eq!(h.num_edges(), 1);

        let g = grid(25);
        let mut shm2 = Shm::new();
        let ids: Vec<usize> = (0..25).collect();
        let h2 = upper_hull_brute(&mut m, &mut shm2, &g, &ids);
        assert_eq!(h2, UpperHull::of(&g));

        // all same x
        let vx: Vec<Point2> = (0..5).map(|i| Point2::new(1.0, i as f64)).collect();
        let mut shm3 = Shm::new();
        let ids: Vec<usize> = (0..5).collect();
        let h3 = upper_hull_brute(&mut m, &mut shm3, &vx, &ids);
        assert_eq!(h3.vertices, vec![4]);
    }

    #[test]
    fn subset_semantics() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 5.0), // excluded apex
            Point2::new(2.0, 0.0),
            Point2::new(1.0, 1.0),
        ];
        let ids = vec![0usize, 2, 3];
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        let h = upper_hull_brute(&mut m, &mut shm, &pts, &ids);
        assert_eq!(h.vertices, vec![0, 3, 2]);
    }

    #[test]
    fn full_output_pointers_verify() {
        let pts = uniform_disk(50, 9);
        let mut m = Machine::new(4);
        let mut shm = Shm::new();
        let out = upper_hull_brute_full(&mut m, &mut shm, &pts);
        verify_upper_hull(&pts, &out.hull).unwrap();
        out.verify_pointers(&pts).unwrap();
    }
}
