//! Registry of this crate's symbolic step plans for the static checker.
//!
//! One [`AlgorithmPlan`] per paper entry point, authored next to each
//! `*_CONTRACT` (see the `verify_plan()` functions in the sibling
//! modules). The registry is what the verify suite sweeps and what the
//! serving runtime's admission precheck draws from.

use ipch_pram::verify::AlgorithmPlan;

/// All hull2d entry-point plans, in the crate's canonical order.
pub fn verify_plans() -> Vec<AlgorithmPlan> {
    vec![
        super::brute::verify_plan(),
        super::folklore::verify_plan(),
        super::presorted::verify_plan(),
        super::logstar::verify_plan(),
        super::unsorted::verify_plan(),
        super::dac::verify_plan(),
        super::batch::verify_plan(),
    ]
}

#[cfg(test)]
mod tests {
    use ipch_pram::verify::{verify_all, Verdict, VerifyConfig};

    #[test]
    fn all_hull2d_plans_verify() {
        for n in [0usize, 1, 2, 64, 4096] {
            let reports = verify_all(&super::verify_plans(), n, &VerifyConfig::default()).unwrap();
            assert_eq!(reports.len(), 7);
            for r in &reports {
                assert_eq!(
                    r.verdict,
                    Verdict::VerifiedStatic,
                    "{} at n={n}",
                    r.algorithm
                );
            }
        }
    }

    #[test]
    fn dac_plan_proves_erew() {
        let r = ipch_pram::verify::verify(
            &super::super::dac::verify_plan(),
            1024,
            &VerifyConfig::default(),
        )
        .unwrap();
        assert_eq!(r.derived, ipch_pram::ModelClass::Erew);
    }
}
