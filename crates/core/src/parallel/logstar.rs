//! The O(log* n)-time algorithm for presorted input (paper §2.5–§2.6,
//! Theorem 2).
//!
//! The recursion of §2.5:
//!
//! 1. Split the n sorted points into n/⌈log^b n⌉ contiguous groups of
//!    ⌈log^b n⌉ points and solve each *recursively, in parallel*, within a
//!    time budget; a group whose recursive call fails is a **failure**.
//! 2. Failure-sweep: compact the failed group ids with Ragde's algorithm
//!    and re-solve each failure with the brute-force constant-time hull
//!    (Observation 2.3, super-linear processors).
//! 3. Combine the group hulls with the constant-time *point-hull-invariant*
//!    algorithm (Lemma 2.6, [`super::invariant::hull_of_hulls`]), the
//!    groups' hulls acting as points.
//!
//! Group sizes shrink as log^b, so the recursion depth is O(log* n); each
//! level costs O(1) (combine) and the processor count stays O(n). The §2.6
//! refinement (two-level arrays + early halt, giving n/log* n processors)
//! changes only the *scheduling*, which Lemma 7 ([`ipch_pram::schedule`])
//! accounts for — experiment T2 reports both the raw metrics and the
//! Lemma-7 simulation at p = n/log* n.
//!
//! Per-point output pointers: in the paper they are produced inside the
//! recursion (each point learns its edge as it is covered); we charge that
//! distributed assignment at its stated cost (O(1) steps, O(n) work) and
//! produce the pointers host-side. All hull computation itself runs on the
//! simulator.

use ipch_geom::{Point2, UpperHull};
use ipch_pram::{
    Machine, Metrics, ModelClass, ModelContract, RaceExpectation, RunError, Shm, EMPTY,
};

use super::brute::upper_hull_brute;
use super::folklore::upper_hull_folklore;
use super::invariant::{hull_of_hulls, HbConfig};
use crate::HullOutput;

/// Tuning of the log* recursion.
#[derive(Clone, Copy, Debug)]
pub struct LogstarParams {
    /// Group-size exponent b (groups of ⌈(log₂ m)^b⌉). The paper's
    /// confidence analysis wants large b; the recursion works for any
    /// b ≥ 2. Default 2.
    pub b: u32,
    /// Below this size, solve deterministically (Lemma 2.4, k = 2).
    pub cutoff: usize,
    /// Combine tuning.
    pub hb: HbConfig,
    /// Probability of *injected* group failure (experiment T9's ablation
    /// knob; 0.0 for normal runs).
    pub inject_failure: f64,
}

impl Default for LogstarParams {
    fn default() -> Self {
        Self {
            b: 2,
            cutoff: 32,
            hb: HbConfig::default(),
            inject_failure: 0.0,
        }
    }
}

/// Diagnostics for experiment T2/T9.
#[derive(Clone, Debug, Default)]
pub struct LogstarReport {
    /// Recursion depth reached.
    pub depth: usize,
    /// Groups swept by the brute-force oracle (over all levels).
    pub swept: usize,
    /// Combine failures swept inside [`hull_of_hulls`].
    pub combine_failures: usize,
}

/// Concurrency contract: Common-CRCW — concurrent writers always agree
/// (constant kill marks and duplicate hull-vertex stores).
pub const LOGSTAR_CONTRACT: ModelContract = ModelContract {
    algorithm: "hull2d/logstar",
    class: ModelClass::Crcw,
    races: RaceExpectation::SameValue,
};

/// Symbolic step structure of [`upper_hull_logstar`] for the static
/// checker ([`ipch_pram::verify`]): the column-top dedup, the per-level
/// group failure marking, and the hull-of-hulls (node, ancestor) coverage
/// OR — all either injective pid maps or constant-mark CombineOr writes,
/// which is exactly the Common-CRCW envelope the contract declares. The
/// brute oracle sweeps and deterministic compaction it invokes carry
/// their own contracts and plans.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    use ipch_pram::WritePolicy;
    let mut p = AlgorithmPlan::new(LOGSTAR_CONTRACT);
    let tops = p.array("hull2d.tops", Affine::n());
    let fail = p.array("ls.fail", Affine::n());
    let cov = p.array("hoh.cov", Affine::n());
    p.step(
        StepPlan::new("column-tops", Affine::n(), WritePolicy::Arbitrary)
            .write(tops, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("fail-mark", Affine::n(), WritePolicy::Arbitrary)
            .write(fail, IndexSet::Exact(Affine::pid())),
    );
    // hull-of-hulls coverage: (node, ancestor) pairs ≤ n² processors
    p.step(
        StepPlan::new("hoh-cover", Affine::n2(), WritePolicy::CombineOr).write_uniform(
            cov,
            IndexSet::Within {
                lo: Affine::k(0),
                hi: Affine::n().minus(1),
            },
        ),
    );
    p
}

/// The O(log* n) algorithm. `points` must be sorted by [`Point2::cmp_xy`].
///
/// Fails with a typed [`RunError`] when a group is still unsolved after the
/// failure sweep or the combine loses a boundary bridge — both impossible
/// on honest runs but reachable under the fault plane, and formerly
/// `unwrap()` panics.
pub fn upper_hull_logstar(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    params: &LogstarParams,
) -> Result<(HullOutput, LogstarReport), RunError> {
    m.declare_contract(&LOGSTAR_CONTRACT);
    let n = points.len();
    let mut report = LogstarReport::default();
    if n == 0 {
        return Ok((
            HullOutput {
                hull: UpperHull::new(vec![]),
                edge_above: vec![],
            },
            report,
        ));
    }
    let all: Vec<usize> = (0..n).collect();
    let ids = crate::column_tops_pram(m, shm, points, &all);
    let hull = recurse(m, shm, points, &ids, params, 0, &mut report)?;

    // pointer assignment, charged at the paper's distributed cost
    m.charge(1, n as u64);
    let mut edge_above = vec![usize::MAX; n];
    if hull.num_edges() > 0 {
        for (i, p) in points.iter().enumerate() {
            if let Some(e) = edge_index_over(points, &hull, p.x) {
                edge_above[i] = e;
            }
        }
    }
    Ok((HullOutput { hull, edge_above }, report))
}

fn edge_index_over(points: &[Point2], hull: &UpperHull, x: f64) -> Option<usize> {
    let vs = &hull.vertices;
    if vs.len() < 2 || x < points[vs[0]].x || x > points[vs[vs.len() - 1]].x {
        return None;
    }
    let (mut lo, mut hi) = (0usize, vs.len() - 1);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if points[vs[mid]].x <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

fn recurse(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    ids: &[usize],
    params: &LogstarParams,
    depth: usize,
    report: &mut LogstarReport,
) -> Result<UpperHull, RunError> {
    report.depth = report.depth.max(depth);
    let n = ids.len();
    if n <= params.cutoff.max(4) {
        return Ok(upper_hull_folklore(m, shm, points, ids, 2));
    }
    let q = ((n.max(2) as f64).log2().powi(params.b as i32).ceil() as usize)
        .clamp(params.cutoff.max(4), n);

    // 1. recursive group solves, in parallel, with failure injection
    let mut hulls: Vec<Option<UpperHull>> = Vec::new();
    let mut children: Vec<Metrics> = Vec::new();
    let mut rng = m.host_rng(depth as u64 ^ 0x105);
    for (gi, chunk) in ids.chunks(q).enumerate() {
        let mut child = m.child((depth as u64) << 32 | gi as u64);
        let failed = params.inject_failure > 0.0 && rng.bernoulli(params.inject_failure);
        if failed {
            hulls.push(None);
            children.push(child.metrics);
        } else {
            let r = recurse(&mut child, shm, points, chunk, params, depth + 1, report);
            children.push(child.metrics);
            match r {
                Ok(h) => hulls.push(Some(h)),
                Err(e) => {
                    // keep the accounting of every group that did run
                    m.metrics.absorb_parallel(&children);
                    return Err(e);
                }
            }
        }
    }
    m.metrics.absorb_parallel(&children);

    // 2. failure sweeping: mark failed groups, Ragde-compact, brute-solve
    let ngroups = hulls.len();
    let failed_ids: Vec<usize> = hulls
        .iter()
        .enumerate()
        .filter_map(|(i, h)| h.is_none().then_some(i))
        .collect();
    if !failed_ids.is_empty() {
        let flags = shm.alloc("ls.fail", ngroups, EMPTY);
        let failed = failed_ids.clone();
        m.step(shm, 0..ngroups, move |ctx| {
            let i = ctx.pid;
            if failed.binary_search(&i).is_ok() {
                ctx.write(flags, i, i as i64);
            }
        });
        let bound = ((ngroups as f64).powf(0.25).ceil() as usize).max(4);
        let comp = ipch_inplace::ragde::ragde_compact_det(m, shm, flags, bound);
        let sweep_list: Vec<usize> = match comp {
            Some(c) => shm
                .slice(c.dst)
                .iter()
                .copied()
                .filter(|&x| x != EMPTY)
                .map(|x| x as usize)
                .collect(),
            None => failed_ids.clone(),
        };
        let mut sweep_children: Vec<Metrics> = Vec::new();
        for gi in sweep_list {
            let chunk = &ids[gi * q..((gi + 1) * q).min(ids.len())];
            let mut child = m.child(gi as u64 ^ 0x5133b);
            hulls[gi] = Some(upper_hull_brute(&mut child, shm, points, chunk));
            sweep_children.push(child.metrics);
            report.swept += 1;
        }
        m.metrics.absorb_parallel(&sweep_children);
    }

    // 3. constant-time point-hull-invariant combine (Lemma 2.6)
    let groups: Vec<UpperHull> = hulls
        .into_iter()
        .enumerate()
        .map(|(gi, h)| {
            h.ok_or_else(|| RunError::Invariant {
                algorithm: "hull2d/logstar",
                detail: format!("group {gi} at depth {depth} unsolved after the failure sweep"),
            })
        })
        .collect::<Result<_, _>>()?;
    let (hull, hrep) = hull_of_hulls(m, shm, points, &groups, &params.hb)?;
    report.combine_failures += hrep.failures;
    Ok(hull)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{circle_plus_interior, on_circle, uniform_disk, uniform_square};
    use ipch_geom::hull_chain::verify_upper_hull;
    use ipch_geom::point::sorted_by_x;

    fn run(
        points: &[Point2],
        seed: u64,
        params: &LogstarParams,
    ) -> (HullOutput, LogstarReport, Machine) {
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let (out, rep) = upper_hull_logstar(&mut m, &mut shm, points, params).expect("logstar");
        (out, rep, m)
    }

    #[test]
    fn matches_oracle_random() {
        for seed in 0..5 {
            let pts = sorted_by_x(&uniform_disk(1200, seed));
            let (out, _, _) = run(&pts, seed, &LogstarParams::default());
            verify_upper_hull(&pts, &out.hull).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(out.hull, UpperHull::of(&pts), "seed {seed}");
            out.verify_pointers(&pts).unwrap();
        }
    }

    #[test]
    fn various_distributions() {
        let cases: Vec<Vec<Point2>> = vec![
            sorted_by_x(&uniform_square(900, 1)),
            sorted_by_x(&on_circle(400, 2)),
            sorted_by_x(&circle_plus_interior(16, 800, 3)),
            sorted_by_x(&ipch_geom::generators::grid(256)),
            vec![Point2::new(0.0, 0.0)],
            vec![],
        ];
        for (i, pts) in cases.iter().enumerate() {
            let (out, _, _) = run(pts, i as u64, &LogstarParams::default());
            assert_eq!(out.hull, UpperHull::of(pts), "case {i}");
        }
    }

    #[test]
    fn depth_grows_like_logstar() {
        // depth should be tiny and grow *extremely* slowly
        let mut depths = Vec::new();
        for n in [256usize, 4096, 32768] {
            let pts = sorted_by_x(&uniform_square(n, 7));
            let (_, rep, _) = run(&pts, 1, &LogstarParams::default());
            depths.push(rep.depth);
        }
        assert!(depths.iter().all(|&d| d <= 4), "depths {depths:?}");
        assert!(depths[2] <= depths[0] + 2, "{depths:?}");
    }

    #[test]
    fn steps_grow_sublogarithmically() {
        let mut steps = Vec::new();
        for n in [512usize, 4096, 32768] {
            let pts = sorted_by_x(&uniform_disk(n, 9));
            let (_, _, m) = run(&pts, 2, &LogstarParams::default());
            steps.push(m.metrics.total_steps());
        }
        // a 64× growth in n should change steps by at most ~2× (log* flavor)
        assert!(
            steps[2] < 3 * steps[0].max(1),
            "steps grew too fast: {steps:?}"
        );
    }

    #[test]
    fn injected_failures_are_swept_correctly() {
        let pts = sorted_by_x(&uniform_disk(2000, 11));
        let params = LogstarParams {
            inject_failure: 0.3,
            ..LogstarParams::default()
        };
        let (out, rep, _) = run(&pts, 3, &params);
        assert!(rep.swept > 0, "injection should cause sweeps");
        assert_eq!(out.hull, UpperHull::of(&pts));
    }

    #[test]
    fn work_stays_near_linear() {
        let n = 16384;
        let pts = sorted_by_x(&uniform_square(n, 13));
        let (_, _, m) = run(&pts, 4, &LogstarParams::default());
        // O(n) work per level × log* levels; generous constant
        assert!(
            m.metrics.total_work() < 3000 * n as u64,
            "work {}",
            m.metrics.total_work()
        );
    }
}
