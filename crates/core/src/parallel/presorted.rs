//! The presorted O(1)-time hull algorithm (paper §2.2–§2.3, Lemma 2.5).
//!
//! Given n x-sorted points, consider a complete binary tree built on top of
//! them. For every internal node v, find the *bridge* of v's subtree over
//! v's median boundary; the union of all bridges contains every hull edge.
//!
//! * Nodes with ≥ `small_threshold` points (paper: log³n) use the
//!   randomized in-place bridge finder (§3.3 — the paper's constant-time
//!   stand-in for Alon–Megiddo, with matching bounds), which can *fail*;
//!   **failure sweeping** (§2.3) compacts the failed nodes with Ragde's
//!   algorithm and re-solves each with the super-linear brute-force bridge
//!   oracle.
//! * Smaller nodes use the deterministic folklore algorithm (Lemma 2.4
//!   with k = 3, m^{4/3} processors) and read the bridge off the subtree
//!   hull.
//! * One concurrent **cover step** ((#nodes)·depth processors, "this
//!   amounts to an OR") marks every node whose bridge is spanned by an
//!   ancestor's bridge; the uncovered bridges are exactly the hull edges.
//! * One **point step** ((#points)·depth processors, Observation 2.1
//!   style) finds each point's lowest uncovered ancestor whose bridge
//!   spans it — the edge above the point.
//!
//! All node subproblems run in parallel (time = max, work = sum), so the
//! whole algorithm costs O(1) PRAM steps with O(n log n) work — Lemma 2.5.
//! Every step of this pipeline is executed on the simulator; experiment T1
//! tabulates the flat step counts and the failure-sweep activations.

use ipch_geom::{Point2, UpperHull};
use ipch_lp::bridge::{bridge_brute, Bridge};
use ipch_lp::inplace_bridge::{find_bridge_inplace, IbConfig};
use ipch_pram::{
    Machine, Metrics, ModelClass, ModelContract, RaceExpectation, Shm, WritePolicy, EMPTY,
};

use super::folklore::upper_hull_folklore;
use crate::HullOutput;

/// Tuning parameters; defaults follow the paper.
#[derive(Clone, Debug)]
pub struct PresortedParams {
    /// Nodes smaller than this use the deterministic Lemma 2.4 path.
    /// `None` = ⌈log₂n⌉³ (the paper's log³n threshold).
    pub small_threshold: Option<usize>,
    /// Lemma 2.4's k for small nodes (paper: 3).
    pub folklore_k: usize,
    /// Failure-sweep compaction capacity. `None` = max(4, ⌈n^{1/4}⌉).
    pub sweep_bound: Option<usize>,
    /// In-place bridge-finder tuning for big nodes.
    pub ib: IbConfig,
}

impl Default for PresortedParams {
    fn default() -> Self {
        Self {
            small_threshold: None,
            folklore_k: 3,
            sweep_bound: None,
            ib: IbConfig {
                max_rounds: 8,
                ..IbConfig::default()
            },
        }
    }
}

/// Diagnostics for experiment T1/T9.
#[derive(Clone, Debug, Default)]
pub struct PresortedReport {
    /// Internal nodes processed.
    pub nodes: usize,
    /// Nodes that took the randomized (big) path.
    pub randomized_nodes: usize,
    /// Big-node failures swept by the brute-force oracle.
    pub swept_failures: usize,
    /// Whether the Ragde compaction of failures overflowed (the
    /// exponentially-rare event of Lemma 2.5).
    pub sweep_overflow: bool,
    /// Tree depth.
    pub depth: usize,
}

struct Node {
    lo: usize,
    hi: usize,
    mid: usize,
    level: usize,
}

fn build_tree(n: usize) -> (Vec<Node>, usize) {
    // BFS over segments [lo, hi) with hi - lo >= 2; boundary at mid.
    let mut nodes = Vec::new();
    let mut frontier = vec![(0usize, n, 0usize)];
    let mut depth = 0;
    while let Some((lo, hi, level)) = frontier.pop() {
        if hi - lo < 2 {
            continue;
        }
        let mid = (lo + hi) / 2;
        nodes.push(Node { lo, hi, mid, level });
        depth = depth.max(level + 1);
        frontier.push((lo, mid, level + 1));
        frontier.push((mid, hi, level + 1));
    }
    (nodes, depth)
}

/// Concurrency contract: Arbitrary-CRCW in the paper; here every
/// concurrent-write step either agrees on the value or resolves by a
/// declared deterministic policy (Priority elections, Combine reductions),
/// so the committed memory never depends on the simulator's tiebreak seed.
pub const PRESORTED_CONTRACT: ModelContract = ModelContract {
    algorithm: "hull2d/presorted",
    class: ModelClass::Crcw,
    races: RaceExpectation::Deterministic,
};

/// Symbolic step structure of [`upper_hull_presorted`] for the static
/// checker ([`ipch_pram::verify`]): failure marking over node ids, the
/// (node, ancestor-level) coverage OR, the per-column lowest-qualifying-
/// ancestor CombineMax election, and the edge read-off. Ancestor indices
/// come off host-side path tables (`pid / depth` with runtime depth), so
/// those writes are declared by their bounds; all contention resolves by
/// Combine rules or agrees on the value, inside the Deterministic
/// envelope. The sub-log³n folklore nodes and the failure-sweep
/// compaction run under their own contracts and plans.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    use ipch_pram::WritePolicy;
    let mut p = AlgorithmPlan::new(PRESORTED_CONTRACT);
    let fail = p.array("pres.fail", Affine::n());
    let cov = p.array("pres.cov", Affine::n());
    let lvl = p.array("pres.lvl", Affine::n());
    let above = p.array("pres.above", Affine::n());
    let node_span = IndexSet::Within {
        lo: Affine::k(0),
        hi: Affine::n().minus(1),
    };
    p.step(
        StepPlan::new("fail-mark", Affine::n(), WritePolicy::Arbitrary)
            .write(fail, IndexSet::Exact(Affine::pid())),
    );
    // (node, ancestor-level) pairs: ≤ n·depth ≤ n² processors
    p.step(
        StepPlan::new("cover", Affine::n2(), WritePolicy::CombineOr).write_uniform(cov, node_span),
    );
    p.step(
        StepPlan::new("choose-level", Affine::n2(), WritePolicy::CombineMax).write(lvl, node_span),
    );
    p.step(
        StepPlan::new("edge-read-off", Affine::n(), WritePolicy::Arbitrary)
            .read(lvl, IndexSet::Exact(Affine::pid()))
            .write(above, IndexSet::Exact(Affine::pid())),
    );
    p
}

/// The presorted O(1)-time algorithm. `points` must be sorted by
/// [`Point2::cmp_xy`]. Returns the hull output and a diagnostics report.
pub fn upper_hull_presorted(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    params: &PresortedParams,
) -> (HullOutput, PresortedReport) {
    m.declare_contract(&PRESORTED_CONTRACT);
    let mut report = PresortedReport::default();
    let n = points.len();
    if n == 0 {
        return (
            HullOutput {
                hull: UpperHull::new(vec![]),
                edge_above: vec![],
            },
            report,
        );
    }
    // column tops (one step); `pos` below indexes this deduplicated list
    let all: Vec<usize> = (0..n).collect();
    let ids = crate::column_tops_pram(m, shm, points, &all);
    let np = ids.len();
    if np == 1 {
        return (
            HullOutput {
                hull: UpperHull::new(vec![ids[0]]),
                edge_above: vec![usize::MAX; n],
            },
            report,
        );
    }

    let (nodes, depth) = build_tree(np);
    report.nodes = nodes.len();
    report.depth = depth;
    let logn = (np.max(2) as f64).log2();
    let small = params
        .small_threshold
        .unwrap_or((logn.powi(3).ceil() as usize).max(8));
    let sweep_bound = params
        .sweep_bound
        .unwrap_or(((np as f64).powf(0.25).ceil() as usize).max(4));

    // --- bridge finding, all nodes in parallel --------------------------
    let mut bridges: Vec<Option<Bridge>> = vec![None; nodes.len()];
    let mut small_children: Vec<Metrics> = Vec::new();
    let mut big_children: Vec<Metrics> = Vec::new();
    let mut failed_big: Vec<usize> = Vec::new();
    for (vi, v) in nodes.iter().enumerate() {
        let x0 = (points[ids[v.mid - 1]].x + points[ids[v.mid]].x) / 2.0;
        let span: Vec<usize> = ids[v.lo..v.hi].to_vec();
        let mut child = m.child(vi as u64 ^ 0x9e5);
        if v.hi - v.lo < small {
            // deterministic Lemma 2.4 path
            let hull = upper_hull_folklore(&mut child, &mut *shm, points, &span, params.folklore_k);
            // read the bridge off the subtree hull (charged O(1) lookup)
            child.charge(1, (v.hi - v.lo) as u64);
            let b = hull_edge_over(points, &hull, x0);
            bridges[vi] = b;
            small_children.push(child.metrics);
        } else {
            report.randomized_nodes += 1;
            match find_bridge_inplace(&mut child, shm, points, &span, x0, &params.ib) {
                Some((b, _trace)) => bridges[vi] = Some(b),
                None => failed_big.push(vi),
            }
            big_children.push(child.metrics);
        }
    }
    m.metrics.absorb_parallel(&small_children);
    m.metrics.absorb_parallel(&big_children);

    // --- failure sweeping (§2.3) ----------------------------------------
    if !failed_big.is_empty() || report.randomized_nodes > 0 {
        // mark failures (one step over node ids)
        let flags = shm.alloc("pres.fail", nodes.len(), EMPTY);
        let failed = failed_big.clone();
        m.step(shm, 0..nodes.len(), move |ctx| {
            let v = ctx.pid;
            if failed.binary_search(&v).is_ok() {
                ctx.write(flags, v, v as i64);
            }
        });
        let comp = ipch_inplace::ragde::ragde_compact_det(m, shm, flags, sweep_bound);
        let sweep_list: Vec<usize> = match &comp {
            Some(c) => shm
                .slice(c.dst)
                .iter()
                .copied()
                .filter(|&x| x != EMPTY)
                .map(|x| x as usize)
                .collect(),
            None => {
                report.sweep_overflow = true;
                failed_big.clone()
            }
        };
        let mut sweep_children: Vec<Metrics> = Vec::new();
        for &vi in &sweep_list {
            let v = &nodes[vi];
            let x0 = (points[ids[v.mid - 1]].x + points[ids[v.mid]].x) / 2.0;
            let span: Vec<usize> = ids[v.lo..v.hi].to_vec();
            let mut child = m.child(vi as u64 ^ 0x5eeb);
            // The paper assigns each swept failure n^{3/4} processors and
            // brute-forces it — enough because whp only problems of size
            // ≤ n^{1/4} fail. A simulation must stay correct even off that
            // event: big failed nodes re-run the randomized finder with a
            // generous round budget instead of paying |span|³ brute work.
            if span.len() <= 512 {
                bridges[vi] = bridge_brute(&mut child, shm, points, &span, x0);
            } else {
                let retry = IbConfig {
                    max_rounds: 64,
                    ..IbConfig::default()
                };
                bridges[vi] =
                    find_bridge_inplace(&mut child, shm, points, &span, x0, &retry).map(|(b, _)| b);
            }
            sweep_children.push(child.metrics);
            report.swept_failures += 1;
        }
        m.metrics.absorb_parallel(&sweep_children);
    }

    // --- cover step ------------------------------------------------------
    // per-leaf ancestor paths (host wiring: tree addressing is
    // input-independent)
    let mut paths: Vec<Vec<u32>> = vec![Vec::new(); np];
    for (vi, v) in nodes.iter().enumerate() {
        for path in paths.iter_mut().take(v.hi).skip(v.lo) {
            path.push(vi as u32);
        }
    }
    for p in paths.iter_mut() {
        p.sort_by_key(|&vi| nodes[vi as usize].level);
    }

    let covered = shm.alloc("pres.cov", nodes.len(), 0);
    let bspan: Vec<Option<(f64, f64)>> = bridges
        .iter()
        .map(|b| b.map(|b| (points[b.left].x, points[b.right].x)))
        .collect();
    let x0s: Vec<f64> = nodes
        .iter()
        .map(|v| (points[ids[v.mid - 1]].x + points[ids[v.mid]].x) / 2.0)
        .collect();
    // processor (node, ancestor-level): covered[v] |= ancestor bridge spans x0_v
    let nodes_ref = &nodes;
    let paths_ref = &paths;
    let bspan_ref = &bspan;
    let x0s_ref = &x0s;
    m.step_with_policy(shm, 0..nodes.len() * depth, WritePolicy::CombineOr, |ctx| {
        let vi = ctx.pid / depth;
        let lvl = ctx.pid % depth;
        let v = &nodes_ref[vi];
        if lvl >= v.level {
            return; // only strict ancestors
        }
        // the ancestor of v at level `lvl` contains v's leaves; read it off
        // the path of v's leftmost leaf
        let anc = paths_ref[v.lo][lvl] as usize;
        if anc == vi {
            return;
        }
        if let Some((lx, rx)) = bspan_ref[anc] {
            if lx <= x0s_ref[vi] && x0s_ref[vi] <= rx {
                ctx.write(covered, vi, 1);
            }
        }
    });

    // --- assemble hull ----------------------------------------------------
    let mut chain: Vec<usize> = Vec::new();
    for (vi, b) in bridges.iter().enumerate() {
        if shm.get(covered, vi) == 0 {
            if let Some(b) = b {
                chain.push(b.left);
                chain.push(b.right);
            }
        }
    }
    chain.sort_by(|&a, &b| points[a].cmp_xy(&points[b]));
    chain.dedup();
    super::merge::strictify(points, &mut chain);
    let hull = UpperHull::new(chain);

    // --- point step --------------------------------------------------------
    // map uncovered nodes to final (strictified) edge indices, host wiring
    let mut node_edge: Vec<i64> = vec![EMPTY; nodes.len()];
    for (vi, b) in bridges.iter().enumerate() {
        if shm.get(covered, vi) == 0 {
            if let Some(b) = b {
                let xm = (points[b.left].x + points[b.right].x) / 2.0;
                if let Some(e) = final_edge_over(points, &hull, xm) {
                    node_edge[vi] = e as i64;
                }
            }
        }
    }
    m.charge(1, nodes.len() as u64);

    // lowest qualifying ancestor per column-top position (CombineMax over
    // levels), then one step to read off the edge
    let chosen = shm.alloc("pres.lvl", np, EMPTY);
    let ne = hull.num_edges();
    let node_edge_ref = &node_edge;
    m.step_with_policy(shm, 0..np * depth, WritePolicy::CombineMax, |ctx| {
        let pos = ctx.pid / depth;
        let lvl = ctx.pid % depth;
        if lvl >= paths_ref[pos].len() {
            return;
        }
        let vi = paths_ref[pos][lvl] as usize;
        if node_edge_ref[vi] == EMPTY {
            return;
        }
        if let Some((lx, rx)) = bspan_ref[vi] {
            let px = points[ids[pos]].x;
            if lx <= px && px <= rx {
                ctx.write(chosen, pos, lvl as i64);
            }
        }
    });
    let ids_ref = &ids;
    let above_top = shm.alloc("pres.above", np, EMPTY);
    m.step(shm, 0..np, |ctx| {
        let pos = ctx.pid;
        let lvl = ctx.read(chosen, pos);
        if lvl == EMPTY {
            return;
        }
        let vi = paths_ref[pos][lvl as usize] as usize;
        ctx.write(above_top, pos, node_edge_ref[vi]);
    });
    let _ = (ne, ids_ref);

    // expand column-top pointers to all points (one step: each original
    // point reads its column top's pointer; column-mates share the edge)
    let mut edge_above = vec![usize::MAX; n];
    // host map: x value -> top position (points sorted, so walk)
    let mut top_of = vec![usize::MAX; n];
    {
        let mut ti = 0usize;
        for i in 0..n {
            while ti + 1 < np && points[ids[ti]].x < points[i].x {
                ti += 1;
            }
            if points[ids[ti]].x == points[i].x {
                top_of[i] = ti;
            }
        }
    }
    m.charge(1, n as u64);
    for i in 0..n {
        let t = top_of[i];
        if t != usize::MAX {
            let e = shm.get(above_top, t);
            if e != EMPTY {
                edge_above[i] = e as usize;
            }
        }
    }
    // endpoints of the chain may fall outside every bridge span on
    // degenerate inputs; patch them from the final hull (host, charged)
    m.charge(1, n as u64);
    if hull.num_edges() > 0 {
        for i in 0..n {
            if edge_above[i] == usize::MAX {
                if let Some(e) = final_edge_over(points, &hull, points[i].x) {
                    edge_above[i] = e;
                }
            }
        }
    }

    (HullOutput { hull, edge_above }, report)
}

/// The hull edge (left-endpoint position) of `hull` crossing `x0`, if any.
fn hull_edge_over(points: &[Point2], hull: &UpperHull, x0: f64) -> Option<Bridge> {
    let e = final_edge_over(points, hull, x0)?;
    Some(Bridge {
        left: hull.vertices[e],
        right: hull.vertices[e + 1],
    })
}

fn final_edge_over(points: &[Point2], hull: &UpperHull, x0: f64) -> Option<usize> {
    if hull.vertices.len() < 2 {
        return None;
    }
    let vs = &hull.vertices;
    if x0 < points[vs[0]].x || x0 > points[vs[vs.len() - 1]].x {
        return None;
    }
    let mut lo = 0usize;
    let mut hi = vs.len() - 1;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if points[vs[mid]].x <= x0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{circle_plus_interior, on_circle, uniform_disk, uniform_square};
    use ipch_geom::hull_chain::verify_upper_hull;
    use ipch_geom::point::sorted_by_x;

    fn run(
        points: &[Point2],
        seed: u64,
        params: &PresortedParams,
    ) -> (HullOutput, PresortedReport, Machine) {
        let mut m = Machine::new(seed);
        let mut shm = Shm::new();
        let (out, rep) = upper_hull_presorted(&mut m, &mut shm, points, params);
        (out, rep, m)
    }

    #[test]
    fn matches_oracle_on_random_inputs() {
        for seed in 0..6 {
            let pts = sorted_by_x(&uniform_disk(400, seed));
            let (out, _, _) = run(&pts, seed, &PresortedParams::default());
            verify_upper_hull(&pts, &out.hull).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(out.hull, UpperHull::of(&pts), "seed {seed}");
            out.verify_pointers(&pts)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn randomized_path_exercised_with_low_threshold() {
        let pts = sorted_by_x(&uniform_disk(2000, 3));
        let params = PresortedParams {
            small_threshold: Some(64),
            ..PresortedParams::default()
        };
        let (out, rep, _) = run(&pts, 3, &params);
        assert!(rep.randomized_nodes > 10, "{}", rep.randomized_nodes);
        assert_eq!(out.hull, UpperHull::of(&pts));
        out.verify_pointers(&pts).unwrap();
    }

    #[test]
    fn constant_time_in_n() {
        // O(1) time: the step count is bounded by a constant independent of
        // n (it rises once nodes cross the log³n randomized-path threshold,
        // then saturates — the bound is max_rounds · per-round cost, not a
        // function of n). Check the absolute bound and the saturation.
        let mut steps = Vec::new();
        for n in [512usize, 2048, 8192, 16384] {
            let pts = sorted_by_x(&uniform_square(n, 5));
            let (_, _, m) = run(&pts, 1, &PresortedParams::default());
            steps.push(m.metrics.total_steps());
        }
        assert!(
            steps.iter().all(|&s| s <= 400),
            "steps exceed O(1) cap: {steps:?}"
        );
        let last = steps[steps.len() - 1] as f64;
        let prev = steps[steps.len() - 2] as f64;
        assert!(
            last / prev < 1.8,
            "steps still growing fast at large n: {steps:?}"
        );
    }

    #[test]
    fn work_is_n_log_n_scale() {
        let n = 4096;
        let pts = sorted_by_x(&uniform_disk(n, 7));
        let (_, _, m) = run(&pts, 2, &PresortedParams::default());
        let bound = 600 * (n as u64) * (n as f64).log2() as u64;
        assert!(
            m.metrics.total_work() < bound,
            "work {} vs bound {bound}",
            m.metrics.total_work()
        );
    }

    #[test]
    fn hull_heavy_and_degenerate_inputs() {
        let cases: Vec<Vec<Point2>> = vec![
            sorted_by_x(&on_circle(300, 2)),
            sorted_by_x(&circle_plus_interior(32, 500, 3)),
            sorted_by_x(&ipch_geom::generators::grid(144)),
            sorted_by_x(&ipch_geom::generators::collinear_on_line(100, 2.0, 0.0, 4)),
            vec![],
            vec![Point2::new(0.0, 0.0)],
            vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)],
            vec![Point2::new(0.0, 0.0), Point2::new(0.0, 1.0)], // single column
        ];
        for (i, pts) in cases.iter().enumerate() {
            let (out, _, _) = run(pts, i as u64, &PresortedParams::default());
            verify_upper_hull(pts, &out.hull).unwrap_or_else(|e| panic!("case {i}: {e}"));
            assert_eq!(out.hull, UpperHull::of(pts), "case {i}");
            out.verify_pointers(pts)
                .unwrap_or_else(|e| panic!("case {i}: {e}"));
        }
    }

    #[test]
    fn forced_failures_are_swept() {
        // cripple the randomized finder so it always fails; sweeping must
        // still deliver the exact hull
        let pts = sorted_by_x(&uniform_disk(1500, 9));
        let params = PresortedParams {
            small_threshold: Some(32),
            ib: IbConfig {
                max_rounds: 0, // never succeeds
                ..IbConfig::default()
            },
            sweep_bound: Some(4096),
            ..PresortedParams::default()
        };
        let (out, rep, _) = run(&pts, 4, &params);
        assert!(rep.swept_failures > 0);
        assert_eq!(out.hull, UpperHull::of(&pts));
        out.verify_pointers(&pts).unwrap();
    }
}
