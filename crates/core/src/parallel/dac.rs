//! The O(log n)-time, n-processor divide-and-conquer hull — the
//! Atallah–Goodrich role in the paper: both the §4.1-step-3 fallback
//! ("solve the problem using any O(log n) time, n processor algorithm,
//! e.g. the algorithm of Atallah and Goodrich") and the
//! non-output-sensitive baseline the T4 crossover table compares Theorem 5
//! against.
//!
//! Structure: sort (for unsorted input, charged at Cole's O(log n) time /
//! O(n log n) work — a cited substrate, see DESIGN.md), then a binary
//! merge tree: log n levels of pairwise hull merges, each O(1) time with
//! n processors ([`crate::parallel::merge`]).

use ipch_geom::point::argsort_xy;
use ipch_geom::{Point2, UpperHull};
use ipch_pram::{Machine, ModelClass, ModelContract, RaceExpectation, Shm};

use super::merge::merge_groups;
use crate::{assign_edges_pram, HullOutput};

/// How unsorted input gets ordered before the merge tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SortMode {
    /// Host sort charged at Cole's published bound (O(log n) steps,
    /// O(n log n) work) — the cited-substrate default.
    #[default]
    ChargedCole,
    /// Batcher's bitonic network, fully executed on the simulator:
    /// O(log² n) steps, every compare-exchange measured.
    ExecutedBitonic,
}

/// Concurrency contract: EREW — pairwise merges partition reads and
/// writes, so no cell is ever touched by two processors in one step.
pub const DAC_CONTRACT: ModelContract = ModelContract {
    algorithm: "hull2d/dac",
    class: ModelClass::Erew,
    races: RaceExpectation::Forbidden,
};

/// Symbolic step structure of [`upper_hull_dac`] for the static checker
/// ([`ipch_pram::verify`]), at the default charged-Cole sort mode (the
/// sort contributes charged cost, no shared-memory accesses). Steps are
/// authored as their *effective* access sets: the pairwise (g = 2)
/// survival step has exactly one candidate writer per slot once the
/// `j < k` pair guard fires, and the edge-pointer refinement writes each
/// point's own `lo`/`hi` cell — all injective pid maps, which is what
/// makes the EREW contract provable rather than merely plausible.
pub fn verify_plan() -> ipch_pram::verify::AlgorithmPlan {
    use ipch_pram::verify::{Affine, AlgorithmPlan, IndexSet, StepPlan};
    use ipch_pram::WritePolicy;
    let mut p = AlgorithmPlan::new(DAC_CONTRACT);
    let tops = p.array("hull2d.tops", Affine::n());
    let dead = p.array("merge.dead", Affine::n());
    let lo = p.array("hull2d.lo", Affine::n());
    let hi = p.array("hull2d.hi", Affine::n());
    p.step(
        StepPlan::new("column-tops", Affine::n(), WritePolicy::Arbitrary)
            .write(tops, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("merge-survive", Affine::n(), WritePolicy::CombineOr)
            .write_uniform(dead, IndexSet::Exact(Affine::pid())),
    );
    p.step(
        StepPlan::new("edge-refine", Affine::n(), WritePolicy::Arbitrary)
            .read(lo, IndexSet::Exact(Affine::pid()))
            .read(hi, IndexSet::Exact(Affine::pid()))
            .write(lo, IndexSet::Exact(Affine::pid()))
            .write(hi, IndexSet::Exact(Affine::pid())),
    );
    p
}

/// Upper hull by pairwise-merge divide and conquer. If `presorted` is
/// false the input is sorted per `sort` (see [`SortMode`]).
pub fn upper_hull_dac_with(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    presorted: bool,
    sort: SortMode,
) -> HullOutput {
    m.declare_contract(&DAC_CONTRACT);
    let n = points.len();
    if n == 0 {
        return HullOutput {
            hull: UpperHull::new(vec![]),
            edge_above: vec![],
        };
    }
    let order: Vec<usize> = if presorted {
        (0..n).collect()
    } else {
        match sort {
            SortMode::ChargedCole => {
                let logn = (n.max(2) as f64).log2().ceil() as u64;
                m.charge(logn, n as u64 * logn); // Cole's parallel mergesort
                argsort_xy(points)
            }
            SortMode::ExecutedBitonic => {
                // sort by the order-isomorphic i64 image of x, carrying the
                // point id as payload; equal-x runs are then put into
                // y-order host-side (the network is not stable; ties are
                // rare outside the torture inputs) at one charged step
                let pairs: Vec<(i64, i64)> = ipch_geom::soa::x_keys(points)
                    .into_iter()
                    .enumerate()
                    .map(|(i, k)| (k, i as i64))
                    .collect();
                let sorted = ipch_pram::sort::sort_pairs(m, shm, &pairs);
                let mut order: Vec<usize> = sorted.into_iter().map(|v| v as usize).collect();
                m.charge(1, n as u64);
                let mut i = 0;
                while i < order.len() {
                    let mut j = i + 1;
                    while j < order.len() && points[order[j]].x == points[order[i]].x {
                        j += 1;
                    }
                    order[i..j].sort_by(|&a, &b| points[a].cmp_xy(&points[b]));
                    i = j;
                }
                order
            }
        }
    };
    let order = crate::column_tops_pram(m, shm, points, &order);
    let mut hulls: Vec<Vec<usize>> = order.iter().map(|&i| vec![i]).collect();
    while hulls.len() > 1 {
        hulls = merge_groups(m, shm, points, &hulls, 2);
    }
    let hull = UpperHull::new(hulls.pop().unwrap_or_default());
    let edge_above = assign_edges_pram(m, shm, points, &hull);
    HullOutput { hull, edge_above }
}

/// [`upper_hull_dac_with`] at the default (charged-Cole) sort mode.
pub fn upper_hull_dac(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    presorted: bool,
) -> HullOutput {
    upper_hull_dac_with(m, shm, points, presorted, SortMode::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{collinear_on_line, grid, on_circle, uniform_disk, uniform_square};
    use ipch_geom::hull_chain::verify_upper_hull;

    #[test]
    fn matches_oracle_on_everything() {
        let cases: Vec<Vec<Point2>> = vec![
            uniform_disk(500, 1),
            uniform_square(500, 2),
            on_circle(200, 3),
            grid(100),
            collinear_on_line(64, 0.5, 1.0, 4),
            vec![],
            vec![Point2::new(1.0, 1.0)],
            vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)],
        ];
        for (i, pts) in cases.iter().enumerate() {
            let mut m = Machine::new(i as u64);
            let mut shm = Shm::new();
            let out = upper_hull_dac(&mut m, &mut shm, pts, false);
            verify_upper_hull(pts, &out.hull).unwrap_or_else(|e| panic!("case {i}: {e}"));
            assert_eq!(out.hull, UpperHull::of(pts), "case {i}");
            out.verify_pointers(pts)
                .unwrap_or_else(|e| panic!("case {i}: {e}"));
        }
    }

    #[test]
    fn logarithmic_time() {
        let mut steps = Vec::new();
        for n in [256usize, 1024, 4096, 16384] {
            let pts = uniform_disk(n, 7);
            let mut m = Machine::new(1);
            let mut shm = Shm::new();
            upper_hull_dac(&mut m, &mut shm, &pts, false);
            steps.push(m.metrics.total_steps());
        }
        // doubling n twice adds a constant number of levels
        for w in steps.windows(2) {
            assert!(w[1] - w[0] <= 16, "steps jumped: {steps:?}");
        }
        // and total time is Θ(log n), not Θ(n)
        assert!(*steps.last().unwrap() < 400, "{steps:?}");
    }

    #[test]
    fn work_is_n_log_n_scale_not_output_sensitive() {
        // same n, tiny vs huge h: work should NOT differ much (this is the
        // baseline the output-sensitive algorithm beats)
        use ipch_geom::generators::circle_plus_interior;
        let n = 8192;
        let small_h = circle_plus_interior(8, n, 5);
        let big_h = on_circle(n, 5);
        let mut m1 = Machine::new(2);
        let mut shm1 = Shm::new();
        upper_hull_dac(&mut m1, &mut shm1, &small_h, false);
        let mut m2 = Machine::new(2);
        let mut shm2 = Shm::new();
        upper_hull_dac(&mut m2, &mut shm2, &big_h, false);
        let (w1, w2) = (m1.metrics.total_work(), m2.metrics.total_work());
        assert!(w2 < 4 * w1, "{w1} vs {w2}: unexpectedly output-sensitive");
    }

    #[test]
    fn presorted_skips_sort_charge() {
        let pts = ipch_geom::point::sorted_by_x(&uniform_disk(512, 8));
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        upper_hull_dac(&mut m, &mut shm, &pts, true);
        let sorted_charge = m.metrics.charged_work;
        let mut m2 = Machine::new(3);
        let mut shm2 = Shm::new();
        upper_hull_dac(&mut m2, &mut shm2, &pts, false);
        assert!(m2.metrics.charged_work > sorted_charge);
    }

    #[test]
    fn bitonic_mode_matches_charged_mode() {
        for (i, pts) in [uniform_disk(300, 9), grid(64), on_circle(150, 10)]
            .iter()
            .enumerate()
        {
            let mut m1 = Machine::new(i as u64);
            let mut s1 = Shm::new();
            let a = upper_hull_dac_with(&mut m1, &mut s1, pts, false, SortMode::ChargedCole);
            let mut m2 = Machine::new(i as u64);
            let mut s2 = Shm::new();
            let b = upper_hull_dac_with(&mut m2, &mut s2, pts, false, SortMode::ExecutedBitonic);
            assert_eq!(a.hull, b.hull, "case {i}");
            // the executed network must cost strictly more steps than the
            // charged bound (log^2 vs log)
            assert!(
                m2.metrics.steps > m1.metrics.steps,
                "bitonic {} !> charged {}",
                m2.metrics.steps,
                m1.metrics.steps
            );
        }
    }

    #[test]
    fn bitonic_step_count_is_log_squared() {
        let n = 1024usize;
        let pts = uniform_disk(n, 11);
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        upper_hull_dac_with(&mut m, &mut shm, &pts, false, SortMode::ExecutedBitonic);
        let lg = (n as f64).log2() as u64;
        // network layers = lg(lg+1)/2 plus the merge tree and pointer steps
        assert!(m.metrics.steps >= lg * (lg + 1) / 2);
        assert!(m.metrics.steps <= lg * (lg + 1) / 2 + 40 * lg);
    }
}
