//! Group-merge machinery shared by the folklore Lemma 2.4 algorithm and
//! the Atallah–Goodrich-role divide-and-conquer fallback.
//!
//! One *merge level* takes `h` x-disjoint upper hulls (as vertex-id lists,
//! left to right) grouped `g` at a time and produces the merged hull of
//! each group:
//!
//! 1. **Tangents** — all C(g,2) pairwise common upper tangents inside each
//!    group. Computed by the Atallah–Goodrich two-polygon search
//!    ([`ipch_geom::hullops::common_upper_tangent`]); on the PRAM this is
//!    O(1) time with q^{1/2} processors per tangent (q^{1/b}-ary search),
//!    which we **charge** (2 steps, √q work per tangent) while executing
//!    the O(log q) host search.
//! 2. **Survival** — one executed step with (Σ vertices)·(g−1) virtual
//!    processors: vertex v of hull i survives iff for every other hull j
//!    in the group it lies on the correct side of the (i, j) tangent's
//!    contact on hull i. A vertex on the union hull survives all pairwise
//!    merges and vice versa.
//!
//! The merged chain is assembled from the survivors, which are already in
//! x-order.

use ipch_geom::hull_chain::UpperHull;
use ipch_geom::hullops::common_upper_tangent;
use ipch_geom::Point2;
use ipch_pram::{Machine, Shm, WritePolicy};

/// Merge each consecutive group of `g` hulls into one. `hulls` must be
/// x-disjoint and ordered left to right; `g ≥ 2`.
///
/// The groups merge **in parallel** — each on its own processor block —
/// so the level costs the *maximum* group time and the *sum* of group
/// work ([`ipch_pram::Metrics::absorb_parallel`]).
pub fn merge_groups(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    hulls: &[Vec<usize>],
    g: usize,
) -> Vec<Vec<usize>> {
    assert!(g >= 2);
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(hulls.len().div_ceil(g));
    let mut children = Vec::with_capacity(out.capacity());
    for (gi, group) in hulls.chunks(g).enumerate() {
        let mut child = m.child(gi as u64 ^ 0x6e6);
        out.push(merge_one_group(&mut child, shm, points, group));
        children.push(child.metrics);
    }
    m.metrics.absorb_parallel(&children);
    out
}

/// Merge one group of x-disjoint hulls into their union's upper hull.
pub fn merge_one_group(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    group: &[Vec<usize>],
) -> Vec<usize> {
    let g = group.len();
    if g == 0 {
        return vec![];
    }
    if g == 1 {
        return group[0].clone();
    }
    let uhs: Vec<UpperHull> = group.iter().map(|v| UpperHull::new(v.clone())).collect();

    // Pairwise tangents: contact *positions* (index into each hull's
    // vertex list). tangential contact of (i, j): (ci, cj).
    let mut contact: Vec<Vec<Option<usize>>> = vec![vec![None; g]; g];
    let mut charged_work = 0u64;
    for i in 0..g {
        for j in i + 1..g {
            if uhs[i].is_empty() || uhs[j].is_empty() {
                continue;
            }
            let (ci, cj) = common_upper_tangent(points, &uhs[i], points, &uhs[j]);
            contact[i][j] = Some(ci);
            contact[j][i] = Some(cj);
            let q = (uhs[i].len() + uhs[j].len()) as f64;
            charged_work += q.sqrt().ceil() as u64;
        }
    }
    // Atallah–Goodrich parallel tangent cost (see module docs).
    m.charge(2, charged_work);

    // Survival step: processor (global vertex slot, hull pair) — executed.
    // Vertex v of hull i dies iff
    //  (a) it is on the wrong side of a contact of a tangent involving i
    //      (pair (i, j): survivors of i are left of the contact when j is
    //      to the right, right of it when j is to the left), or
    //  (b) it lies strictly below the tangent *segment* of a pair (j, k)
    //      not involving i whose x-span covers it — the "skipped-over
    //      hull" case that pure pairwise contact tests miss.
    // Together these test v against every edge of every pairwise union
    // hull, which characterizes membership in the union hull (hull edges
    // of other hulls never span v.x because the hulls are x-disjoint).
    let slots: Vec<(usize, usize)> = (0..g)
        .flat_map(|i| (0..uhs[i].len()).map(move |v| (i, v)))
        .collect();
    let nslots = slots.len();
    let dead = shm.alloc("merge.dead", nslots, 0);
    let contact_ref = &contact;
    let slots_ref = &slots;
    let uhs_ref = &uhs;
    m.step_with_policy(shm, 0..nslots * g * g, WritePolicy::CombineOr, |ctx| {
        let s = ctx.pid / (g * g);
        let jk = ctx.pid % (g * g);
        let (j, k) = (jk / g, jk % g);
        if j >= k {
            return;
        }
        let (i, v) = slots_ref[s];
        let (Some(cj), Some(ck)) = (contact_ref[j][k], contact_ref[k][j]) else {
            return;
        };
        if i == j {
            // (a): i is the left hull of the pair — survivors are ≤ contact
            if v > cj {
                ctx.write(dead, s, 1);
            }
        } else if i == k {
            if v < ck {
                ctx.write(dead, s, 1);
            }
        } else {
            // (b): tangent segment of an unrelated pair
            let a = points[uhs_ref[j].vertices[cj]];
            let b = points[uhs_ref[k].vertices[ck]];
            let p = points[uhs_ref[i].vertices[v]];
            if p.x >= a.x && p.x <= b.x && ipch_geom::predicates::orient2d_sign(a, b, p) < 0 {
                ctx.write(dead, s, 1);
            }
        }
    });

    let mut merged: Vec<usize> = Vec::new();
    for (s, &(i, v)) in slots.iter().enumerate() {
        if shm.get(dead, s) == 0 {
            merged.push(uhs[i].vertices[v]);
        }
    }
    // collinear contacts can leave redundant collinear vertices; a strict
    // chain is restored by one local convexity sweep (host cleanup of
    // boundary artifacts, O(result))
    strictify(points, &mut merged);
    merged
}

/// Drop non-strictly-convex vertices from an x-sorted candidate chain.
/// Host-side output cleanup shared by several algorithms' assembly stages.
pub fn strictify(points: &[Point2], chain: &mut Vec<usize>) {
    use ipch_geom::predicates::orient2d_sign;
    let mut st: Vec<usize> = Vec::with_capacity(chain.len());
    for &i in chain.iter() {
        while let Some(&t) = st.last() {
            if points[t].x == points[i].x {
                if points[t].y <= points[i].y {
                    st.pop();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if let Some(&t) = st.last() {
            if points[t].x == points[i].x {
                continue;
            }
        }
        while st.len() >= 2
            && orient2d_sign(
                points[st[st.len() - 2]],
                points[st[st.len() - 1]],
                points[i],
            ) >= 0
        {
            st.pop();
        }
        st.push(i);
    }
    *chain = st;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::uniform_disk;
    use ipch_geom::hull_chain::{upper_hull_indices, verify_upper_hull};

    fn group_hulls(points: &[Point2], order: &[usize], chunk: usize) -> Vec<Vec<usize>> {
        order
            .chunks(chunk)
            .map(|ch| {
                let sub: Vec<Point2> = ch.iter().map(|&i| points[i]).collect();
                upper_hull_indices(&sub)
                    .into_iter()
                    .map(|i| ch[i])
                    .collect()
            })
            .collect()
    }

    #[test]
    fn merge_two_hulls_matches_oracle() {
        for seed in 0..6 {
            let pts = uniform_disk(200, seed);
            let order = ipch_geom::point::argsort_xy(&pts);
            let hulls = group_hulls(&pts, &order, 100);
            let mut m = Machine::new(seed);
            let mut shm = Shm::new();
            let merged = merge_one_group(&mut m, &mut shm, &pts, &hulls);
            let expect = upper_hull_indices(&pts);
            assert_eq!(merged, expect, "seed {seed}");
        }
    }

    #[test]
    fn merge_many_groups() {
        for g in [2usize, 3, 5, 8] {
            let pts = uniform_disk(400, 42);
            let order = ipch_geom::point::argsort_xy(&pts);
            let hulls = group_hulls(&pts, &order, 400usize.div_ceil(g));
            let mut m = Machine::new(1);
            let mut shm = Shm::new();
            let merged = merge_one_group(&mut m, &mut shm, &pts, &hulls);
            verify_upper_hull(&pts, &UpperHull::new(merged.clone())).unwrap();
            assert_eq!(merged, upper_hull_indices(&pts), "g={g}");
        }
    }

    #[test]
    fn merge_with_tiny_hulls() {
        // singleton hulls: merging g points
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 2.0),
            Point2::new(2.0, 1.9),
            Point2::new(3.0, 0.0),
        ];
        let hulls: Vec<Vec<usize>> = (0..4).map(|i| vec![i]).collect();
        let mut m = Machine::new(2);
        let mut shm = Shm::new();
        let merged = merge_one_group(&mut m, &mut shm, &pts, &hulls);
        assert_eq!(merged, vec![0, 1, 2, 3]);
    }

    #[test]
    fn skipped_over_hull_dies() {
        // A tall, C tall, B low in between: the union hull jumps A → C and
        // B must contribute nothing (the case pure pairwise contacts miss).
        let pts = vec![
            Point2::new(0.0, 10.0),  // A
            Point2::new(5.0, 9.0),   // B (below segment A–C)
            Point2::new(10.0, 10.0), // C
        ];
        let hulls = vec![vec![0], vec![1], vec![2]];
        let mut m = Machine::new(7);
        let mut shm = Shm::new();
        let merged = merge_one_group(&mut m, &mut shm, &pts, &hulls);
        assert_eq!(merged, vec![0, 2]);
    }

    #[test]
    fn merge_collinear_hulls() {
        // two collinear segments: merged chain is the two extremes
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
            Point2::new(3.0, 3.0),
        ];
        let hulls = vec![vec![0, 1], vec![2, 3]];
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        let merged = merge_one_group(&mut m, &mut shm, &pts, &hulls);
        assert_eq!(merged, vec![0, 3]);
    }

    #[test]
    fn survival_step_is_executed_once() {
        let pts = uniform_disk(100, 9);
        let order = ipch_geom::point::argsort_xy(&pts);
        let hulls = group_hulls(&pts, &order, 25);
        let mut m = Machine::new(4);
        let mut shm = Shm::new();
        merge_one_group(&mut m, &mut shm, &pts, &hulls);
        assert_eq!(m.metrics.steps, 1, "exactly one executed survival step");
        assert_eq!(m.metrics.charged_steps, 2);
    }
}
