//! Parallel (CRCW PRAM) convex-hull algorithms — the paper's contribution.

pub mod batch;
pub mod brute;
pub mod dac;
pub mod folklore;
pub mod invariant;
pub mod logstar;
pub mod merge;
pub mod presorted;
pub mod sharded;
pub mod supervised;
pub mod trace;
pub mod unsorted;
pub mod verify_plans;
