//! Parallel (CRCW PRAM) convex-hull algorithms — the paper's contribution.

pub mod brute;
pub mod dac;
pub mod folklore;
pub mod invariant;
pub mod logstar;
pub mod merge;
pub mod presorted;
pub mod supervised;
pub mod trace;
pub mod unsorted;
