//! Supervised (Las Vegas) entry points for the 2-D hull algorithms.
//!
//! Each wrapper runs its algorithm under [`mod@ipch_pram::supervise`]: an
//! attempt's result must pass the full certificate — chain convexity and
//! coverage ([`verify_upper_hull`]) plus per-point pointer validity
//! ([`HullOutput::verify_pointers`]) — before it is returned. Failed or
//! panicking attempts retry on fresh child seeds; when every attempt fails,
//! a deterministic algorithm with no coin flips (the divide-and-conquer
//! merge tree, or Lemma 2.4's folklore hull for presorted input) produces
//! the value instead. Under any installed [`ipch_pram::FaultPlan`] the
//! caller therefore receives a certificate-verified hull or a typed
//! [`RunError`] — never a silently wrong chain, never a panic.
//!
//! Each attempt allocates its own scratch [`Shm`]; the returned hulls are
//! host-side values, so no shared-memory handles cross the attempt
//! boundary.
//!
//! Being the public service-facing entry points, the wrappers also validate
//! their input up front ([`ipch_geom::validate`]): NaN/infinite coordinates
//! and duplicate points reject with [`RunError::InvalidInput`] before any
//! machine step runs — downstream behaviour on such inputs is unspecified
//! (a NaN poisons every orientation decision it meets).

use ipch_geom::hull_chain::verify_upper_hull;
use ipch_geom::validate::validate_points2;
use ipch_geom::Point2;
use ipch_pram::{supervise, Machine, RunError, Shm, SuperviseConfig, Supervised};

use super::dac::upper_hull_dac;
use super::folklore::upper_hull_folklore_full;
use super::logstar::{upper_hull_logstar, LogstarParams, LogstarReport};
use super::trace::UnsortedTrace;
use super::unsorted::{upper_hull_unsorted, UnsortedParams};
use crate::HullOutput;

/// The certificate every 2-D wrapper demands of a result.
fn certify(algorithm: &'static str, points: &[Point2], out: &HullOutput) -> Result<(), RunError> {
    verify_upper_hull(points, &out.hull)
        .map_err(|detail| RunError::Verify { algorithm, detail })?;
    out.verify_pointers(points)
        .map_err(|detail| RunError::Verify { algorithm, detail })
}

/// Supervised §2.5 O(log* n) hull. `points` must be x-sorted
/// ([`Point2::cmp_xy`]). Falls back to the deterministic merge tree.
pub fn upper_hull_logstar_supervised(
    m: &mut Machine,
    points: &[Point2],
    params: &LogstarParams,
    cfg: &SuperviseConfig,
) -> Result<Supervised<(HullOutput, LogstarReport)>, RunError> {
    const ALG: &str = "hull2d/logstar";
    validate_points2(points).map_err(|e| RunError::invalid_input(ALG, e))?;
    let mut fallback = |fm: &mut Machine| {
        let mut shm = Shm::new();
        let out = upper_hull_dac(fm, &mut shm, points, true);
        certify(ALG, points, &out)?;
        Ok((out, LogstarReport::default()))
    };
    supervise(
        m,
        ALG,
        cfg,
        |am: &mut Machine| {
            let mut shm = Shm::new();
            let (out, rep) = upper_hull_logstar(am, &mut shm, points, params)?;
            certify(ALG, points, &out)?;
            Ok((out, rep))
        },
        Some(&mut fallback),
    )
}

/// Supervised §3 output-sensitive hull on unsorted input (Theorem 5).
/// Falls back to the deterministic sort-then-merge tree.
pub fn upper_hull_unsorted_supervised(
    m: &mut Machine,
    points: &[Point2],
    params: &UnsortedParams,
    cfg: &SuperviseConfig,
) -> Result<Supervised<(HullOutput, UnsortedTrace)>, RunError> {
    const ALG: &str = "hull2d/unsorted";
    validate_points2(points).map_err(|e| RunError::invalid_input(ALG, e))?;
    let mut fallback = |fm: &mut Machine| {
        let mut shm = Shm::new();
        let out = upper_hull_dac(fm, &mut shm, points, false);
        certify(ALG, points, &out)?;
        Ok((out, UnsortedTrace::default()))
    };
    supervise(
        m,
        ALG,
        cfg,
        |am: &mut Machine| {
            let mut shm = Shm::new();
            let (out, trace) = upper_hull_unsorted(am, &mut shm, points, params);
            certify(ALG, points, &out)?;
            Ok((out, trace))
        },
        Some(&mut fallback),
    )
}

/// Supervised divide-and-conquer hull. The algorithm itself is
/// deterministic, so supervision only matters under injected faults: a
/// corrupted run fails the certificate and retries on a child whose fault
/// schedule re-derives (transient corruption decorrelates); the fallback
/// is the folklore hull for presorted input, or a fresh merge-tree run
/// otherwise.
pub fn upper_hull_dac_supervised(
    m: &mut Machine,
    points: &[Point2],
    presorted: bool,
    cfg: &SuperviseConfig,
) -> Result<Supervised<HullOutput>, RunError> {
    const ALG: &str = "hull2d/dac";
    validate_points2(points).map_err(|e| RunError::invalid_input(ALG, e))?;
    let mut fallback = |fm: &mut Machine| {
        let mut shm = Shm::new();
        let out = if presorted {
            upper_hull_folklore_full(fm, &mut shm, points, 2)
        } else {
            upper_hull_dac(fm, &mut shm, points, false)
        };
        certify(ALG, points, &out)?;
        Ok(out)
    };
    supervise(
        m,
        ALG,
        cfg,
        |am: &mut Machine| {
            let mut shm = Shm::new();
            let out = upper_hull_dac(am, &mut shm, points, presorted);
            certify(ALG, points, &out)?;
            Ok(out)
        },
        Some(&mut fallback),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::uniform_disk;
    use ipch_geom::point::sorted_by_x;
    use ipch_geom::UpperHull;
    use ipch_pram::Outcome;

    #[test]
    fn clean_runs_succeed_first_try() {
        let pts = sorted_by_x(&uniform_disk(600, 3));
        let mut m = Machine::new(1);
        let cfg = SuperviseConfig::default();
        let s = upper_hull_logstar_supervised(&mut m, &pts, &LogstarParams::default(), &cfg)
            .expect("clean logstar");
        assert_eq!(s.outcome, Outcome::FirstTry);
        assert_eq!(s.value.0.hull, UpperHull::of(&pts));

        let unsorted = uniform_disk(600, 4);
        let s = upper_hull_unsorted_supervised(&mut m, &unsorted, &UnsortedParams::default(), &cfg)
            .expect("clean unsorted");
        assert_eq!(s.outcome, Outcome::FirstTry);
        assert_eq!(s.value.0.hull, UpperHull::of(&unsorted));

        let s = upper_hull_dac_supervised(&mut m, &pts, true, &cfg).expect("clean dac");
        assert_eq!(s.outcome, Outcome::FirstTry);
        assert_eq!(s.value.hull, UpperHull::of(&pts));
        assert_eq!(m.metrics.supervisor.runs, 3);
        assert_eq!(m.metrics.supervisor.retries, 0);
    }

    #[test]
    fn nan_and_duplicate_inputs_reject_before_any_step() {
        let mut bad = sorted_by_x(&uniform_disk(64, 5));
        bad[10].y = f64::NAN;
        let dup = {
            let mut p = sorted_by_x(&uniform_disk(64, 6));
            p[20] = p[21];
            p
        };
        let cfg = SuperviseConfig::default();
        let mut m = Machine::new(2);
        for pts in [&bad, &dup] {
            let e = upper_hull_logstar_supervised(&mut m, pts, &LogstarParams::default(), &cfg)
                .unwrap_err();
            assert!(matches!(e, RunError::InvalidInput { .. }), "got {e}");
            let e = upper_hull_unsorted_supervised(&mut m, pts, &UnsortedParams::default(), &cfg)
                .unwrap_err();
            assert!(matches!(e, RunError::InvalidInput { .. }), "got {e}");
            let e = upper_hull_dac_supervised(&mut m, pts, false, &cfg).unwrap_err();
            assert!(matches!(e, RunError::InvalidInput { .. }), "got {e}");
        }
        assert_eq!(m.metrics.steps, 0, "rejection precedes any machine step");
        assert_eq!(m.metrics.supervisor.attempts, 0);
    }
}
