//! Point-hull invariance (paper §2.4, Lemma 2.6).
//!
//! An algorithm is *point-hull invariant* if it can run with upper hulls
//! as its ground elements instead of points, replacing the three point
//! primitives with their hull analogues (Atallah–Goodrich):
//!
//! | point/line primitive | hull primitive used here |
//! |---|---|
//! | side-of-line test | does the hull poke above the line? ([`ipch_geom::hullops::hull_above_line`]) |
//! | line through two points | common upper tangent ([`ipch_geom::hullops::common_upper_tangent`]) |
//! | line ∩ line | hull ∩ hull (only needed implicitly: tangent contacts) |
//!
//! [`bridge_over_hulls`] is the §3.3 bridge finder with hulls as elements:
//! random-sample Θ(k) hulls (an **executed** dart-throwing sample over
//! hull ids), solve the base by brute force over left×right hull pairs
//! (tangent + above-line feasibility), filter surviving hulls, repeat.
//! [`hull_of_hulls`] then runs the §2.2 tree-of-bridges over group
//! boundaries and stitches tangent edges with the surviving runs of the
//! original hulls — Lemma 2.6's "constant time upper hull algorithm on
//! hulls".
//!
//! Hull-primitive costs: each tangent / above-line query is executed
//! host-side in O(log q) and **charged** at the Atallah–Goodrich parallel
//! cost (O(1) steps, √q processors — the b = 2 instance of their
//! q^{1/b}-ary search); sampling and survivor bookkeeping are executed
//! steps on the simulator.

use ipch_geom::hullops::{common_upper_tangent, hull_above_line};
use ipch_geom::predicates::orient2d_sign;
use ipch_geom::{Point2, UpperHull};
use ipch_inplace::sample::random_sample_with_p;
use ipch_lp::bridge::Bridge;
use ipch_pram::{Machine, Metrics, RunError, Shm, WritePolicy};

/// Tuning for the hull-element bridge finder.
#[derive(Clone, Copy, Debug)]
pub struct HbConfig {
    /// Base size parameter k; `None` = ⌈g^{1/3}⌉ clamped ≥ 2.
    pub k: Option<usize>,
    /// Round cap before failure.
    pub max_rounds: usize,
}

impl Default for HbConfig {
    fn default() -> Self {
        Self {
            k: None,
            max_rounds: 12,
        }
    }
}

/// Find the bridge of the union of the x-disjoint `groups` straddling
/// `x = x0` (which must separate two groups), treating each hull as one
/// ground element. Returns endpoint *point ids*.
pub fn bridge_over_hulls(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    groups: &[UpperHull],
    x0: f64,
    cfg: &HbConfig,
) -> Option<Bridge> {
    let g = groups.len();
    if g < 2 {
        return None;
    }
    let qmax = groups.iter().map(|h| h.len()).max().unwrap_or(1);
    let k = cfg.k.unwrap_or(((g as f64).cbrt().ceil() as usize).max(2));

    // Small case: all hulls form the base.
    if g <= 16 * k {
        let all: Vec<usize> = (0..g).collect();
        return brute_bridge_hulls(m, points, groups, &all, x0, qmax);
    }

    // Survivor flags over hull ids (private registers).
    let surv = shm.alloc("hb.surv", g, 1);
    let mut p_j = 2.0 * k as f64 / g as f64;
    let mut best: Option<Bridge> = None;
    for round in 0..cfg.max_rounds {
        let survivors: Vec<usize> = (0..g).filter(|&i| shm.get(surv, i) != 0).collect();
        let out = random_sample_with_p(m, shm, &survivors, g, k, 4, Some(p_j));
        let mut base = out.sample;
        if let Some(b) = best {
            // keep the groups of the current contacts for monotonicity
            for id in [b.left, b.right] {
                if let Some(gi) = groups.iter().position(|h| h.vertices.contains(&id)) {
                    if !base.contains(&gi) {
                        base.push(gi);
                    }
                }
            }
        }
        p_j = (p_j * 2.0 * k as f64).min(1.0);
        if base.len() < 2 {
            continue;
        }
        base.sort_unstable();
        base.dedup();
        let mut child = m.child(round as u64 ^ 0x4b);
        let sol = brute_bridge_hulls(&mut child, points, groups, &base, x0, qmax);
        m.metrics.absorb(&child.metrics);
        let Some(bridge) = sol else { continue };
        best = Some(bridge);
        // survivor step: one executed step over hull ids; the above-line
        // test is the charged hull primitive
        let (u, v) = (points[bridge.left], points[bridge.right]);
        let groups_ref = groups;
        // xlint: allow(arbitrary-policy): each processor writes only
        // surv[pid] — exclusive cells, the policy never resolves a collision.
        m.step_with_policy(shm, 0..g, WritePolicy::Arbitrary, |ctx| {
            let i = ctx.pid;
            let above = hull_above_line(points, &groups_ref[i], u, v);
            ctx.write(surv, i, if above { 1 } else { 0 });
        });
        m.charge(1, g as u64 * (qmax as f64).sqrt().ceil() as u64);
        let nsurv = (0..g).filter(|&i| shm.get(surv, i) != 0).count();
        if nsurv == 0 {
            return Some(bridge);
        }
    }
    None
}

/// Brute-force bridge over the hull subset `base` (ids into `groups`):
/// all left×right tangent candidates, feasibility by above-line tests.
fn brute_bridge_hulls(
    m: &mut Machine,
    points: &[Point2],
    groups: &[UpperHull],
    base: &[usize],
    x0: f64,
    qmax: usize,
) -> Option<Bridge> {
    let left: Vec<usize> = base
        .iter()
        .copied()
        .filter(|&i| !groups[i].is_empty() && points[*groups[i].vertices.last().unwrap()].x <= x0)
        .collect();
    let right: Vec<usize> = base
        .iter()
        .copied()
        .filter(|&i| !groups[i].is_empty() && points[groups[i].vertices[0]].x > x0)
        .collect();
    let mut best: Option<Bridge> = None;
    let mut ops = 0u64;
    for &i in &left {
        for &j in &right {
            let (ci, cj) = common_upper_tangent(points, &groups[i], points, &groups[j]);
            ops += 1;
            let u = groups[i].vertices[ci];
            let v = groups[j].vertices[cj];
            let (pu, pv) = (points[u], points[v]);
            if !(pu.x <= x0 && x0 < pv.x) {
                continue;
            }
            let feasible = base.iter().all(|&t| {
                ops += 1;
                t == i || t == j || !hull_above_line(points, &groups[t], pu, pv)
            });
            if feasible {
                // canonical: prefer the tightest straddling pair
                best = match best {
                    None => Some(Bridge { left: u, right: v }),
                    Some(b) => {
                        if points[u].x > points[b.left].x
                            || (points[u].x == points[b.left].x && points[v].x < points[b.right].x)
                        {
                            Some(Bridge { left: u, right: v })
                        } else {
                            Some(b)
                        }
                    }
                };
            }
        }
    }
    // charge the whole candidate evaluation: O(1) steps, ops·√q work
    m.charge(2, ops * (qmax.max(1) as f64).sqrt().ceil() as u64);
    best
}

/// Report from [`hull_of_hulls`].
#[derive(Clone, Debug, Default)]
pub struct HohReport {
    /// Boundary-bridge failures (after retries) — the Lemma 2.6 failure
    /// event, swept by a direct brute merge.
    pub failures: usize,
}

/// Upper hull of the union of x-disjoint `groups` (Lemma 2.6): a tree of
/// bridges over the group boundaries, cover test, and stitching.
///
/// Fails with [`RunError::Invariant`] when a boundary bridge cannot be
/// found even by the brute-force sweep — for honest inputs a straddling
/// tangent always exists, so a missing one means the data the node saw was
/// inconsistent (e.g. under injected memory corruption). Before this was
/// typed, such a node was silently skipped and the stitched chain could be
/// wrong.
pub fn hull_of_hulls(
    m: &mut Machine,
    shm: &mut Shm,
    points: &[Point2],
    groups: &[UpperHull],
    cfg: &HbConfig,
) -> Result<(UpperHull, HohReport), RunError> {
    let mut report = HohReport::default();
    let nonempty: Vec<&UpperHull> = groups.iter().filter(|h| !h.is_empty()).collect();
    if nonempty.is_empty() {
        return Ok((UpperHull::new(vec![]), report));
    }
    if nonempty.len() == 1 {
        return Ok((nonempty[0].clone(), report));
    }
    let groups: Vec<UpperHull> = groups.iter().filter(|h| !h.is_empty()).cloned().collect();
    let g = groups.len();

    // tree of boundaries over group positions
    let mut nodes: Vec<(usize, usize, usize)> = Vec::new(); // (lo, hi, mid)
    let mut stack = vec![(0usize, g)];
    while let Some((lo, hi)) = stack.pop() {
        if hi - lo < 2 {
            continue;
        }
        let mid = (lo + hi) / 2;
        nodes.push((lo, hi, mid));
        stack.push((lo, mid));
        stack.push((mid, hi));
    }

    // per-node bridge, all nodes in parallel
    let mut bridges: Vec<Option<Bridge>> = vec![None; nodes.len()];
    let mut children: Vec<Metrics> = Vec::new();
    for (vi, &(lo, hi, mid)) in nodes.iter().enumerate() {
        let x0 = (points[*groups[mid - 1].vertices.last().unwrap()].x
            + points[groups[mid].vertices[0]].x)
            / 2.0;
        let mut child = m.child(vi as u64 ^ 0x40b);
        let mut scratch = Shm::new();
        bridges[vi] = bridge_over_hulls(&mut child, &mut scratch, points, &groups[lo..hi], x0, cfg);
        if bridges[vi].is_none() {
            // sweep: direct brute over all pairs of the node's groups
            report.failures += 1;
            let all: Vec<usize> = (0..hi - lo).collect();
            let qmax = groups[lo..hi].iter().map(|h| h.len()).max().unwrap_or(1);
            bridges[vi] = brute_bridge_hulls(&mut child, points, &groups[lo..hi], &all, x0, qmax);
        }
        children.push(child.metrics);
        if bridges[vi].is_none() {
            m.metrics.absorb_parallel(&children);
            return Err(RunError::Invariant {
                algorithm: "hull2d/hull_of_hulls",
                detail: format!(
                    "no straddling bridge at boundary node {vi} (groups {lo}..{hi}, x0={x0}) \
                     even after the brute-force sweep"
                ),
            });
        }
    }
    m.metrics.absorb_parallel(&children);

    // cover step (executed): node vi covered iff an ancestor's bridge spans
    // its boundary abscissa
    let x0s: Vec<f64> = nodes
        .iter()
        .map(|&(_, _, mid)| {
            (points[*groups[mid - 1].vertices.last().unwrap()].x
                + points[groups[mid].vertices[0]].x)
                / 2.0
        })
        .collect();
    let covered = shm.alloc("hoh.cov", nodes.len(), 0);
    let nodes_ref = &nodes;
    let bridges_ref = &bridges;
    let x0s_ref = &x0s;
    m.step_with_policy(
        shm,
        0..nodes.len() * nodes.len(),
        WritePolicy::CombineOr,
        |ctx| {
            let vi = ctx.pid / nodes_ref.len();
            let ui = ctx.pid % nodes_ref.len();
            if vi == ui {
                return;
            }
            let (vlo, vhi, _) = nodes_ref[vi];
            let (ulo, uhi, _) = nodes_ref[ui];
            // u strict ancestor of v ⇔ strictly containing interval
            if !(ulo <= vlo && vhi <= uhi && (uhi - ulo) > (vhi - vlo)) {
                return;
            }
            if let Some(b) = bridges_ref[ui] {
                if points[b.left].x <= x0s_ref[vi] && x0s_ref[vi] <= points[b.right].x {
                    ctx.write(covered, vi, 1);
                }
            }
        },
    );

    // stitch: uncovered bridges are the inter-group tangent edges; each
    // group contributes the run between its arriving and leaving contacts
    let mut pos_of: std::collections::HashMap<usize, (usize, usize)> =
        std::collections::HashMap::new();
    for (gi, h) in groups.iter().enumerate() {
        for (p, &id) in h.vertices.iter().enumerate() {
            pos_of.insert(id, (gi, p));
        }
    }
    let mut arriving: Vec<Option<usize>> = vec![None; g];
    let mut leaving: Vec<Option<usize>> = vec![None; g];
    let mut tangents: Vec<Bridge> = Vec::new();
    for (vi, b) in bridges.iter().enumerate() {
        if shm.get(covered, vi) != 0 {
            continue;
        }
        if let Some(b) = b {
            tangents.push(*b);
            if let Some(&(gi, p)) = pos_of.get(&b.left) {
                leaving[gi] = Some(match leaving[gi] {
                    Some(old) => old.min(p),
                    None => p,
                });
            }
            if let Some(&(gi, p)) = pos_of.get(&b.right) {
                arriving[gi] = Some(match arriving[gi] {
                    Some(old) => old.max(p),
                    None => p,
                });
            }
        }
    }
    let mut chain: Vec<usize> = Vec::new();
    for gi in 0..g {
        let (a, l) = match (arriving[gi], leaving[gi]) {
            (None, None) => {
                if gi == 0 || gi == g - 1 {
                    // extreme group with no tangents at all (g == 1 handled
                    // above): keep its whole chain
                    (0, groups[gi].len() - 1)
                } else {
                    continue; // skipped-over group
                }
            }
            (a, l) => (a.unwrap_or(0), l.unwrap_or(groups[gi].len() - 1)),
        };
        if a <= l {
            chain.extend_from_slice(&groups[gi].vertices[a..=l]);
        } else {
            // degenerate contact ordering: keep the tangent endpoints only
            chain.push(groups[gi].vertices[l]);
            chain.push(groups[gi].vertices[a]);
        }
    }
    chain.sort_by(|&x, &y| points[x].cmp_xy(&points[y]));
    chain.dedup();
    super::merge::strictify(points, &mut chain);
    Ok((UpperHull::new(chain), report))
}

/// Reference check used by tests: the hull of the union computed directly.
pub fn union_oracle(points: &[Point2], groups: &[UpperHull]) -> UpperHull {
    let mut all: Vec<usize> = groups.iter().flat_map(|h| h.vertices.clone()).collect();
    all.sort_by(|&a, &b| points[a].cmp_xy(&points[b]));
    let sub: Vec<Point2> = all.iter().map(|&i| points[i]).collect();
    UpperHull::new(
        ipch_geom::hull_chain::upper_hull_indices(&sub)
            .into_iter()
            .map(|i| all[i])
            .collect(),
    )
}

/// Is `p` on or below the chain `hull`? Host-side test helper.
pub fn below_chain(points: &[Point2], hull: &UpperHull, p: Point2) -> bool {
    match hull.edge_above(points, p) {
        Some((u, v)) => orient2d_sign(points[u], points[v], p) <= 0,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::uniform_disk;
    use ipch_geom::hull_chain::verify_upper_hull;
    use ipch_geom::point::sorted_by_x;

    fn make_groups(points: &[Point2], q: usize) -> Vec<UpperHull> {
        // points sorted; contiguous slices of size q
        let mut out = Vec::new();
        let mut lo = 0;
        while lo < points.len() {
            let hi = (lo + q).min(points.len());
            let ids: Vec<usize> = (lo..hi).collect();
            let sub: Vec<Point2> = ids.iter().map(|&i| points[i]).collect();
            let h = UpperHull::new(
                ipch_geom::hull_chain::upper_hull_indices(&sub)
                    .into_iter()
                    .map(|i| ids[i])
                    .collect(),
            );
            out.push(h);
            lo = hi;
        }
        out
    }

    #[test]
    fn bridge_over_hulls_small_case() {
        let pts = sorted_by_x(&uniform_disk(200, 1));
        let groups = make_groups(&pts, 25);
        let mid = groups.len() / 2;
        let x0 = (pts[*groups[mid - 1].vertices.last().unwrap()].x
            + pts[groups[mid].vertices[0]].x)
            / 2.0;
        let mut m = Machine::new(1);
        let mut shm = Shm::new();
        let b = bridge_over_hulls(&mut m, &mut shm, &pts, &groups, x0, &HbConfig::default())
            .expect("bridge");
        // exact check against the point-level bridge
        let ids: Vec<usize> = (0..pts.len()).collect();
        let mut m2 = Machine::new(2);
        let mut shm2 = Shm::new();
        let expect = ipch_lp::bridge::bridge_brute(&mut m2, &mut shm2, &pts, &ids, x0).unwrap();
        assert_eq!((b.left, b.right), (expect.left, expect.right));
    }

    #[test]
    fn bridge_over_many_hulls_randomized_path() {
        let pts = sorted_by_x(&uniform_disk(3000, 2));
        let groups = make_groups(&pts, 10); // 300 hulls ⇒ randomized path
        let mid = groups.len() / 2;
        let x0 = (pts[*groups[mid - 1].vertices.last().unwrap()].x
            + pts[groups[mid].vertices[0]].x)
            / 2.0;
        let mut m = Machine::new(3);
        let mut shm = Shm::new();
        let b = bridge_over_hulls(&mut m, &mut shm, &pts, &groups, x0, &HbConfig::default())
            .expect("bridge");
        // oracle: the hull edge over x0
        let hull = UpperHull::of(&pts);
        let (u, v) = hull.edge_above(&pts, Point2::new(x0, 0.0)).unwrap();
        assert_eq!((b.left, b.right), (u, v));
    }

    #[test]
    fn hull_of_hulls_matches_union_oracle() {
        for seed in 0..5 {
            for q in [5usize, 20, 60] {
                let pts = sorted_by_x(&uniform_disk(400, seed));
                let groups = make_groups(&pts, q);
                let mut m = Machine::new(seed);
                let mut shm = Shm::new();
                let (h, _) =
                    hull_of_hulls(&mut m, &mut shm, &pts, &groups, &HbConfig::default()).unwrap();
                verify_upper_hull(&pts, &h).unwrap_or_else(|e| panic!("seed {seed} q {q}: {e}"));
                assert_eq!(h, UpperHull::of(&pts), "seed {seed} q {q}");
            }
        }
    }

    #[test]
    fn hull_of_hulls_skipped_middle_group() {
        // middle group entirely under the A–C tangent
        let pts = vec![
            Point2::new(0.0, 10.0),
            Point2::new(1.0, 0.0),
            Point2::new(4.0, 1.0),
            Point2::new(5.0, 1.5),
            Point2::new(9.0, 0.0),
            Point2::new(10.0, 10.0),
        ];
        let groups = vec![
            UpperHull::new(vec![0, 1]),
            UpperHull::new(vec![2, 3]),
            UpperHull::new(vec![4, 5]),
        ];
        let mut m = Machine::new(7);
        let mut shm = Shm::new();
        let (h, _) = hull_of_hulls(&mut m, &mut shm, &pts, &groups, &HbConfig::default()).unwrap();
        assert_eq!(h.vertices, vec![0, 5]);
    }

    #[test]
    fn hull_of_hulls_trivial_cases() {
        let pts = sorted_by_x(&uniform_disk(30, 9));
        let groups = make_groups(&pts, 30); // single group
        let mut m = Machine::new(8);
        let mut shm = Shm::new();
        let (h, _) = hull_of_hulls(&mut m, &mut shm, &pts, &groups, &HbConfig::default()).unwrap();
        assert_eq!(h, UpperHull::of(&pts));
        // empty
        let (h0, _) = hull_of_hulls(&mut m, &mut shm, &pts, &[], &HbConfig::default()).unwrap();
        assert!(h0.is_empty());
    }

    #[test]
    fn constant_time_combine() {
        // combine time should not grow with the number of points per group
        let mut steps = Vec::new();
        for n in [200usize, 800, 3200] {
            let pts = sorted_by_x(&uniform_disk(n, 11));
            let groups = make_groups(&pts, n / 10);
            let mut m = Machine::new(5);
            let mut shm = Shm::new();
            hull_of_hulls(&mut m, &mut shm, &pts, &groups, &HbConfig::default()).unwrap();
            steps.push(m.metrics.total_steps());
        }
        let (min, max) = (steps.iter().min().unwrap(), steps.iter().max().unwrap());
        assert!(max - min <= max / 2 + 6, "steps not ~flat: {steps:?}");
    }
}
