//! # ipch-hull2d — 2-D convex hull algorithms
//!
//! The primary-contribution crate of the Ghouse–Goodrich SPAA'91
//! reproduction. Two families:
//!
//! **Sequential baselines** ([`seq`]) — the algorithms the paper positions
//! itself against:
//! * monotone chain (Andrew): O(n) presorted / O(n log n) unsorted;
//! * Graham scan;
//! * Jarvis march: O(nh);
//! * Kirkpatrick–Seidel marriage-before-conquest: O(n log h) — the bound
//!   the paper's Theorem 5 parallelizes;
//! * Chan's algorithm: O(n log h).
//!
//! **Parallel algorithms on the CRCW PRAM simulator** ([`parallel`]):
//! * [`parallel::brute`] — Observation 2.3: upper hull in O(1) time, n³
//!   work;
//! * [`parallel::folklore`] — Lemma 2.4: O(k) time, n^{1+1/k} processors;
//! * [`parallel::presorted`] — §2.2–2.3 (Lemma 2.5): presorted hull in
//!   O(1) time with O(n log n) processors, via a binary tree of bridges,
//!   randomized bridge-finding on big nodes, Lemma 2.4 on small nodes, and
//!   failure sweeping;
//! * [`parallel::invariant`] — §2.4 (Lemma 2.6): the point-hull-invariant
//!   bridge machinery over x-disjoint upper hulls;
//! * [`parallel::logstar`] — §2.5–2.6 (Theorem 2): the O(log* n)-time
//!   recursive algorithm with optimal processor bounds;
//! * [`parallel::unsorted`] — §4.1–4.2 (Theorem 5): the output-sensitive
//!   O(log n)-time, O(n log h)-work algorithm for unsorted input;
//! * [`parallel::dac`] — the Atallah–Goodrich-role O(log n), n-processor
//!   divide-and-conquer hull, both the §4.1-step-3 fallback and the
//!   non-output-sensitive comparison baseline.
//!
//! All parallel algorithms produce a [`HullOutput`]: the hull chain plus
//! the paper's output convention — *every point holds a pointer to the
//! hull edge above (or through) it*.

pub mod parallel;
pub mod seq;

pub use ipch_geom::hull_chain::{verify_upper_hull, UpperHull};

/// Output convention of the paper's 2-D algorithms: the upper hull, plus a
/// per-point pointer to the covering hull edge.
#[derive(Clone, Debug)]
pub struct HullOutput {
    /// The upper hull (vertex ids into the input array, left to right).
    pub hull: UpperHull,
    /// `edge_above[i]` = index into `hull.vertices` of the left endpoint of
    /// the edge above point `i` (so the edge is `(vertices[e], vertices[e+1])`),
    /// or `usize::MAX` for single-vertex hulls.
    pub edge_above: Vec<usize>,
}

impl HullOutput {
    /// Check the per-point pointers against the hull (every point on or
    /// below its assigned edge, and within its x-span).
    pub fn verify_pointers(&self, points: &[ipch_geom::Point2]) -> Result<(), String> {
        use ipch_geom::predicates::orient2d_sign;
        if self.hull.vertices.len() < 2 {
            return Ok(());
        }
        if self.edge_above.len() != points.len() {
            return Err("edge_above length mismatch".into());
        }
        for (i, &e) in self.edge_above.iter().enumerate() {
            if e + 1 >= self.hull.vertices.len() {
                return Err(format!("point {i}: edge index {e} out of range"));
            }
            let u = points[self.hull.vertices[e]];
            let v = points[self.hull.vertices[e + 1]];
            let p = points[i];
            if p.x < u.x || p.x > v.x {
                return Err(format!("point {i} outside its edge's x-span"));
            }
            if orient2d_sign(u, v, p) > 0 {
                return Err(format!("point {i} strictly above its edge"));
            }
        }
        Ok(())
    }
}

/// Keep only the top point of every column of equal-x points (one
/// executed step over the sorted id list: position t survives iff its
/// successor has a different x). Upper hulls only ever use column tops,
/// and deduplicating first keeps the merge trees' groups strictly
/// x-disjoint even on tie-heavy inputs (grids, duplicates).
pub fn column_tops_pram(
    m: &mut ipch_pram::Machine,
    shm: &mut ipch_pram::Shm,
    points: &[ipch_geom::Point2],
    sorted_ids: &[usize],
) -> Vec<usize> {
    let t = sorted_ids.len();
    if t == 0 {
        return vec![];
    }
    shm.scope(|shm| {
        let keep = shm.alloc("hull2d.tops", t, 0);
        m.kernel_scatter(shm, 0..t, |_, pos| {
            if pos + 1 == t || points[sorted_ids[pos + 1]].x != points[sorted_ids[pos]].x {
                Some((keep, pos, 1))
            } else {
                None
            }
        });
        (0..t)
            .filter(|&pos| shm.get(keep, pos) != 0)
            .map(|pos| sorted_ids[pos])
            .collect()
    })
}

/// Build per-point edge pointers from a finished hull: every point
/// binary-searches the hull's vertex abscissas in lockstep — ⌈log₂ h⌉
/// executed steps of n processors each (work n·log h, never h·n).
pub fn assign_edges_pram(
    m: &mut ipch_pram::Machine,
    shm: &mut ipch_pram::Shm,
    points: &[ipch_geom::Point2],
    hull: &UpperHull,
) -> Vec<usize> {
    let n = points.len();
    let ne = hull.num_edges();
    if ne == 0 || n == 0 {
        return vec![usize::MAX; n];
    }
    shm.scope(|shm| {
        let lo = shm.alloc("hull2d.lo", n, 0);
        let hi = shm.alloc("hull2d.hi", n, ne as i64 - 1);
        let verts = &hull.vertices;
        // invariant: the covering edge index lies in [lo, hi]
        let rounds = (usize::BITS - ne.leading_zeros()) as usize + 1;
        for _ in 0..rounds {
            m.kernel_scatter(shm, 0..n, |t, i| {
                let l = t.read(lo, i);
                let h = t.read(hi, i);
                if l >= h {
                    return None;
                }
                let mid = (l + h) / 2;
                // edge `mid` spans [x(mid), x(mid+1)]
                if points[verts[(mid + 1) as usize]].x >= points[i].x {
                    Some((hi, i, mid))
                } else {
                    Some((lo, i, mid + 1))
                }
            });
        }
        (0..n)
            .map(|i| {
                let e = shm.get(lo, i) as usize;
                let u = points[verts[e]];
                let v = points[verts[e + 1]];
                if u.x <= points[i].x && points[i].x <= v.x {
                    e
                } else {
                    usize::MAX
                }
            })
            .collect()
    })
}
