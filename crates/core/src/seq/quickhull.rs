//! Quickhull — the widely deployed practical baseline. Expected
//! O(n log n) on random inputs, Θ(n²) worst case; *not* output-sensitive
//! in the Kirkpatrick–Seidel sense (it recurses before discarding, the
//! exact trade-off the paper's marriage-before-conquest reverses), which
//! makes it an instructive column in the T4 table.

use ipch_geom::predicates::orient2d_sign;
use ipch_geom::{Point2, UpperHull};

use super::SeqStats;

/// Upper hull by quickhull.
pub fn upper_hull(pts: &[Point2], stats: &mut SeqStats) -> UpperHull {
    let n = pts.len();
    if n == 0 {
        return UpperHull::new(vec![]);
    }
    // endpoints: extreme x, max y on ties
    let l = (0..n)
        .min_by(|&a, &b| {
            pts[a]
                .x
                .partial_cmp(&pts[b].x)
                .unwrap()
                .then(pts[b].y.partial_cmp(&pts[a].y).unwrap())
        })
        .unwrap();
    let r = (0..n)
        .max_by(|&a, &b| {
            pts[a]
                .x
                .partial_cmp(&pts[b].x)
                .unwrap()
                .then(pts[a].y.partial_cmp(&pts[b].y).unwrap())
        })
        .unwrap();
    if pts[l].x == pts[r].x {
        return UpperHull::new(vec![r]);
    }
    let above: Vec<usize> = (0..n)
        .filter(|&i| {
            stats.orientation_tests += 1;
            i != l && i != r && orient2d_sign(pts[l], pts[r], pts[i]) > 0
        })
        .collect();
    let mut chain = vec![l];
    expand(pts, l, r, &above, &mut chain, stats);
    chain.push(r);
    UpperHull::new(chain)
}

/// Emit the chain vertices strictly between `a` and `b` (which subtend the
/// candidate set `set`, all strictly above segment a→b).
fn expand(
    pts: &[Point2],
    a: usize,
    b: usize,
    set: &[usize],
    chain: &mut Vec<usize>,
    stats: &mut SeqStats,
) {
    if set.is_empty() {
        return;
    }
    // farthest point from the line a→b (ties: leftmost keeps determinism)
    let dist = |i: usize| {
        let (pa, pb, p) = (pts[a], pts[b], pts[i]);
        ((pb.x - pa.x) * (pa.y - p.y) - (pa.x - p.x) * (pb.y - pa.y)).abs()
    };
    let far = *set
        .iter()
        .max_by(|&&i, &&j| dist(i).partial_cmp(&dist(j)).unwrap())
        .unwrap();
    let left: Vec<usize> = set
        .iter()
        .copied()
        .filter(|&i| {
            stats.orientation_tests += 1;
            i != far && orient2d_sign(pts[a], pts[far], pts[i]) > 0
        })
        .collect();
    let right: Vec<usize> = set
        .iter()
        .copied()
        .filter(|&i| {
            stats.orientation_tests += 1;
            i != far && orient2d_sign(pts[far], pts[b], pts[i]) > 0
        })
        .collect();
    expand(pts, a, far, &left, chain, stats);
    chain.push(far);
    expand(pts, far, b, &right, chain, stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{
        circle_plus_interior, collinear_on_line, grid, on_circle, uniform_disk,
    };
    use ipch_geom::hull_chain::verify_upper_hull;

    #[test]
    fn matches_oracle() {
        for seed in 0..6 {
            for n in [1usize, 2, 3, 20, 400] {
                let pts = uniform_disk(n, seed);
                let mut st = SeqStats::default();
                let h = upper_hull(&pts, &mut st);
                verify_upper_hull(&pts, &h).unwrap_or_else(|e| panic!("seed {seed} n {n}: {e}"));
                assert_eq!(h, UpperHull::of(&pts), "seed {seed} n {n}");
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        for (i, pts) in [
            grid(81),
            collinear_on_line(50, 2.0, 1.0, 1),
            on_circle(200, 2),
            vec![Point2::new(1.0, 0.0); 7],
            vec![Point2::new(0.0, 0.0), Point2::new(0.0, 5.0)],
        ]
        .iter()
        .enumerate()
        {
            let mut st = SeqStats::default();
            let h = upper_hull(pts, &mut st);
            verify_upper_hull(pts, &h).unwrap_or_else(|e| panic!("case {i}: {e}"));
            let got: Vec<Point2> = h.vertices.iter().map(|&v| pts[v]).collect();
            let expect: Vec<Point2> = UpperHull::of(pts)
                .vertices
                .iter()
                .map(|&v| pts[v])
                .collect();
            assert_eq!(got, expect, "case {i}");
        }
    }

    #[test]
    fn efficient_on_small_h() {
        let pts = circle_plus_interior(8, 20_000, 3);
        let mut st = SeqStats::default();
        upper_hull(&pts, &mut st);
        // one farthest-point pass discards almost everything
        assert!(
            st.orientation_tests < 6 * 20_000,
            "{}",
            st.orientation_tests
        );
    }
}
