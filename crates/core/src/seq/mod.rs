//! Sequential baselines.
//!
//! Each algorithm returns the upper hull as vertex ids into the (never
//! reordered) input and reports a [`SeqStats`] with its orientation-test
//! count — the machine-independent work measure the T4 comparison tables
//! use alongside wall-clock.

pub mod chan;
pub mod graham;
pub mod jarvis;
pub mod ks;
pub mod monotone;
pub mod quickhull;

/// Work counters for a sequential run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeqStats {
    /// Orientation tests performed.
    pub orientation_tests: u64,
    /// Comparisons performed (sorting, median finding, …).
    pub comparisons: u64,
}

impl SeqStats {
    /// Total counted operations.
    pub fn total(&self) -> u64 {
        self.orientation_tests + self.comparisons
    }
}
