//! Graham's scan (1972) — the classic O(n log n) full-hull baseline.
//!
//! Sorts by polar angle around the lowest point, then scans. We expose the
//! full hull and derive the upper chain from it so the baseline tables can
//! report a like-for-like "upper hull" object.

use ipch_geom::predicates::orient2d_sign;
use ipch_geom::{Point2, UpperHull};

use super::SeqStats;

/// Full convex hull (counter-clockwise vertex ids) by Graham's scan.
pub fn convex_hull(pts: &[Point2], stats: &mut SeqStats) -> Vec<usize> {
    let n = pts.len();
    if n == 0 {
        return vec![];
    }
    // pivot: lowest y, then lowest x
    let pivot = (0..n)
        .min_by(|&a, &b| {
            pts[a]
                .y
                .partial_cmp(&pts[b].y)
                .unwrap()
                .then(pts[a].x.partial_cmp(&pts[b].x).unwrap())
        })
        .unwrap();
    let mut order: Vec<usize> = (0..n).filter(|&i| i != pivot).collect();
    let p0 = pts[pivot];
    order.sort_by(|&a, &b| {
        stats.orientation_tests += 1;
        let s = orient2d_sign(p0, pts[a], pts[b]);
        match s.cmp(&0) {
            std::cmp::Ordering::Equal => {
                // closer first on collinear rays
                p0.dist2(&pts[a]).partial_cmp(&p0.dist2(&pts[b])).unwrap()
            }
            o => o.reverse(), // CCW first
        }
    });
    // drop coincident-with-pivot duplicates
    order.retain(|&i| pts[i] != p0);

    let mut st: Vec<usize> = vec![pivot];
    for &i in &order {
        while st.len() >= 2 {
            stats.orientation_tests += 1;
            if orient2d_sign(pts[st[st.len() - 2]], pts[st[st.len() - 1]], pts[i]) <= 0 {
                st.pop();
            } else {
                break;
            }
        }
        st.push(i);
    }
    st
}

/// Upper hull derived from the Graham full hull: the CCW cycle from the
/// max-(x, y) vertex to the min-(x, y) vertex, reversed into left-to-right
/// order.
pub fn upper_hull(pts: &[Point2], stats: &mut SeqStats) -> UpperHull {
    let cycle = convex_hull(pts, stats);
    if cycle.len() <= 1 {
        return UpperHull::new(cycle);
    }
    // upper-chain endpoints: among x-ties the *highest* vertex (vertical
    // hull edges belong to the sides, not the upper chain)
    let upper_key = |i: usize| (pts[cycle[i]].x, pts[cycle[i]].y);
    let lo = (0..cycle.len())
        .min_by(|&a, &b| {
            let (ka, kb) = (upper_key(a), upper_key(b));
            ka.0.partial_cmp(&kb.0)
                .unwrap()
                .then(kb.1.partial_cmp(&ka.1).unwrap())
        })
        .unwrap();
    let hi = (0..cycle.len())
        .max_by(|&a, &b| {
            let (ka, kb) = (upper_key(a), upper_key(b));
            ka.0.partial_cmp(&kb.0)
                .unwrap()
                .then(ka.1.partial_cmp(&kb.1).unwrap())
        })
        .unwrap();
    // CCW cycle: walking hi → lo passes over the top
    let mut chain: Vec<usize> = Vec::new();
    let mut i = hi;
    loop {
        chain.push(cycle[i]);
        if i == lo {
            break;
        }
        i = (i + 1) % cycle.len();
    }
    chain.reverse();
    // strict x-monotonicity: drop any vertical-tie artifacts at the ends
    chain.dedup_by(|a, b| pts[*a].x == pts[*b].x);
    UpperHull::new(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{grid, uniform_disk, uniform_square};
    use ipch_geom::hull_chain::{is_ccw_convex_polygon, verify_upper_hull};

    #[test]
    fn full_hull_is_convex_and_matches_oracle_size() {
        for seed in 0..5 {
            let pts = uniform_disk(300, seed);
            let mut st = SeqStats::default();
            let cycle = convex_hull(&pts, &mut st);
            assert!(is_ccw_convex_polygon(&pts, &cycle));
            let oracle = ipch_geom::hull_chain::convex_hull_indices(&pts);
            assert_eq!(cycle.len(), oracle.len(), "seed {seed}");
        }
    }

    #[test]
    fn upper_hull_matches_oracle() {
        for seed in 0..5 {
            let pts = uniform_square(400, seed + 10);
            let mut st = SeqStats::default();
            let h = upper_hull(&pts, &mut st);
            verify_upper_hull(&pts, &h).unwrap();
            assert_eq!(h, UpperHull::of(&pts), "seed {seed}");
        }
    }

    #[test]
    fn degenerate_grid() {
        let pts = grid(64);
        let mut st = SeqStats::default();
        let h = upper_hull(&pts, &mut st);
        verify_upper_hull(&pts, &h).unwrap();
    }

    #[test]
    fn tiny_inputs() {
        let mut st = SeqStats::default();
        assert!(convex_hull(&[], &mut st).is_empty());
        let one = vec![Point2::new(1.0, 1.0)];
        assert_eq!(convex_hull(&one, &mut st), vec![0]);
        let two = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)];
        assert_eq!(convex_hull(&two, &mut st).len(), 2);
    }
}
