//! Kirkpatrick–Seidel "ultimate" convex hull — the O(n log h) sequential
//! output-sensitive baseline (1986), whose marriage-before-conquest
//! paradigm the paper's unsorted algorithm parallelizes (§4.1: "the
//! algorithm uses the 'marriage-before-conquest' paradigm of Kirkpatrick
//! and Seidel").
//!
//! Structure: find the bridge over the median abscissa *first* (linear
//! time, by pairing points and pruning against the median slope), emit it,
//! and recurse only on the points outside the bridge's x-span. Points
//! under the bridge are discarded before ever being sorted — that is where
//! the log h (instead of log n) comes from.

use ipch_geom::predicates::orient2d_sign;
use ipch_geom::{Point2, UpperHull};

use super::SeqStats;

/// Upper hull in O(n log h) time.
pub fn upper_hull(pts: &[Point2], stats: &mut SeqStats) -> UpperHull {
    let n = pts.len();
    if n == 0 {
        return UpperHull::new(vec![]);
    }
    // Upper-hull endpoints: leftmost (max y on ties), rightmost (max y).
    let lmin = (0..n)
        .min_by(|&a, &b| {
            pts[a]
                .x
                .partial_cmp(&pts[b].x)
                .unwrap()
                .then(pts[b].y.partial_cmp(&pts[a].y).unwrap())
        })
        .unwrap();
    let rmax = (0..n)
        .max_by(|&a, &b| {
            pts[a]
                .x
                .partial_cmp(&pts[b].x)
                .unwrap()
                .then(pts[a].y.partial_cmp(&pts[b].y).unwrap())
        })
        .unwrap();
    if pts[lmin].x == pts[rmax].x {
        return UpperHull::new(vec![rmax]);
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let ids: Vec<usize> = (0..n)
        .filter(|&i| {
            // keep only points inside the slab (plus the endpoints)
            i == lmin || i == rmax || (pts[i].x >= pts[lmin].x && pts[i].x <= pts[rmax].x)
        })
        .collect();
    connect(pts, &ids, lmin, rmax, &mut edges, stats);
    edges.sort_by(|a, b| pts[a.0].cmp_xy(&pts[b.0]));
    let mut verts: Vec<usize> = Vec::with_capacity(edges.len() + 1);
    for (i, e) in edges.iter().enumerate() {
        if i == 0 {
            verts.push(e.0);
        }
        verts.push(e.1);
    }
    if verts.is_empty() {
        verts.push(rmax);
    }
    // bridges over collinear runs return the tightest contact pair, so the
    // assembled chain can carry collinear interior vertices; collapse them
    // into a strict chain (O(h) pass)
    let mut strict: Vec<usize> = Vec::with_capacity(verts.len());
    for v in verts {
        while strict.len() >= 2
            && orient2d_sign(
                pts[strict[strict.len() - 2]],
                pts[strict[strict.len() - 1]],
                pts[v],
            ) >= 0
        {
            strict.pop();
        }
        strict.push(v);
    }
    UpperHull::new(strict)
}

/// Emit the upper-hull edges between endpoint ids `l` and `r` over the
/// candidate set `ids` (which must contain `l` and `r`).
fn connect(
    pts: &[Point2],
    ids: &[usize],
    l: usize,
    r: usize,
    edges: &mut Vec<(usize, usize)>,
    stats: &mut SeqStats,
) {
    if pts[l].x >= pts[r].x {
        return;
    }
    if ids.len() == 2 {
        edges.push((l, r));
        return;
    }
    // median abscissa, forced strictly below the maximum so a straddling
    // bridge exists
    let mut xs: Vec<f64> = ids.iter().map(|&i| pts[i].x).collect();
    let mid = xs.len() / 2;
    xs.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).unwrap());
    stats.comparisons += ids.len() as u64;
    let mut xm = xs[mid];
    let xmax = pts[r].x;
    if xm >= xmax {
        xm = xs
            .iter()
            .copied()
            .filter(|&x| x < xmax)
            .fold(f64::MIN, f64::max);
    }

    let (a, b) = bridge(pts, ids, xm, stats);
    edges.push((a, b));

    if pts[l].x < pts[a].x {
        let left: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&i| pts[i].x < pts[a].x || i == a || i == l)
            .collect();
        connect(pts, &left, l, a, edges, stats);
    }
    if pts[b].x < pts[r].x {
        let right: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&i| pts[i].x > pts[b].x || i == b || i == r)
            .collect();
        connect(pts, &right, b, r, edges, stats);
    }
}

/// KS linear-time bridge over `x = xm`: prune-and-search on paired slopes.
fn bridge(pts: &[Point2], ids: &[usize], xm: f64, stats: &mut SeqStats) -> (usize, usize) {
    let mut cand: Vec<usize> = ids.to_vec();
    for _round in 0..64 {
        if cand.len() <= 8 {
            return bridge_brute_small(pts, ids, &cand, xm, stats);
        }
        // pair up; same-x pairs drop the lower point
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(cand.len() / 2);
        let mut next: Vec<usize> = Vec::with_capacity(cand.len() / 2 + 1);
        let mut it = cand.chunks_exact(2);
        for ch in &mut it {
            let (mut p, mut q) = (ch[0], ch[1]);
            if pts[p].x > pts[q].x {
                std::mem::swap(&mut p, &mut q);
            }
            if pts[p].x == pts[q].x {
                stats.comparisons += 1;
                next.push(if pts[p].y >= pts[q].y { p } else { q });
            } else {
                pairs.push((p, q));
            }
        }
        next.extend_from_slice(it.remainder());
        if pairs.is_empty() {
            cand = next;
            continue;
        }
        // median slope
        let mut slopes: Vec<f64> = pairs
            .iter()
            .map(|&(p, q)| (pts[q].y - pts[p].y) / (pts[q].x - pts[p].x))
            .collect();
        stats.comparisons += slopes.len() as u64;
        let midk = slopes.len() / 2;
        slopes.select_nth_unstable_by(midk, |a, b| a.partial_cmp(b).unwrap());
        let k = slopes[midk];

        // contact set of the supporting line with slope k
        let key = |i: usize| pts[i].y - k * pts[i].x;
        let mut best = f64::NEG_INFINITY;
        for &i in &cand {
            best = best.max(key(i));
        }
        stats.comparisons += cand.len() as u64;
        let eps = 1e-12 * (1.0 + best.abs());
        let contacts: Vec<usize> = cand
            .iter()
            .copied()
            .filter(|&i| key(i) >= best - eps)
            .collect();
        let cmin = contacts
            .iter()
            .copied()
            .min_by(|&a, &b| pts[a].x.partial_cmp(&pts[b].x).unwrap())
            .unwrap();
        let cmax = contacts
            .iter()
            .copied()
            .max_by(|&a, &b| pts[a].x.partial_cmp(&pts[b].x).unwrap())
            .unwrap();

        if pts[cmin].x <= xm && pts[cmax].x > xm {
            // straddling contacts: the bridge is the adjacent pair around xm
            let a = contacts
                .iter()
                .copied()
                .filter(|&i| pts[i].x <= xm)
                .max_by(|&a, &b| pts[a].x.partial_cmp(&pts[b].x).unwrap())
                .unwrap();
            let b = contacts
                .iter()
                .copied()
                .filter(|&i| pts[i].x > xm)
                .min_by(|&a, &b| pts[a].x.partial_cmp(&pts[b].x).unwrap())
                .unwrap();
            return (a, b);
        }
        if pts[cmax].x <= xm {
            // bridge slope < k: left points of steep pairs are out
            for (p, q) in pairs {
                let s = (pts[q].y - pts[p].y) / (pts[q].x - pts[p].x);
                stats.comparisons += 1;
                if s >= k {
                    next.push(q);
                } else {
                    next.push(p);
                    next.push(q);
                }
            }
        } else {
            // bridge slope > k: right points of shallow pairs are out
            for (p, q) in pairs {
                let s = (pts[q].y - pts[p].y) / (pts[q].x - pts[p].x);
                stats.comparisons += 1;
                if s <= k {
                    next.push(p);
                } else {
                    next.push(p);
                    next.push(q);
                }
            }
        }
        cand = next;
    }
    // numerical stall: fall back to the exact small-case search
    bridge_brute_small(pts, ids, &cand, xm, stats)
}

/// Exact bridge among `cand` (which contains the bridge endpoints),
/// verified against the full candidate set `ids`.
fn bridge_brute_small(
    pts: &[Point2],
    ids: &[usize],
    cand: &[usize],
    xm: f64,
    stats: &mut SeqStats,
) -> (usize, usize) {
    let mut best: Option<(usize, usize)> = None;
    for &p in cand {
        for &q in cand {
            if !(pts[p].x <= xm && xm < pts[q].x) {
                continue;
            }
            let all_below = ids.iter().all(|&w| {
                stats.orientation_tests += 1;
                orient2d_sign(pts[p], pts[q], pts[w]) <= 0
            });
            if all_below {
                // prefer the tightest straddling pair (canonical contacts)
                best = match best {
                    None => Some((p, q)),
                    Some((bp, bq)) => {
                        if pts[p].x > pts[bp].x || (pts[p].x == pts[bp].x && pts[q].x < pts[bq].x) {
                            Some((p, q))
                        } else {
                            Some((bp, bq))
                        }
                    }
                };
            }
        }
    }
    best.expect("bridge endpoints are preserved by pruning")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{circle_plus_interior, on_circle, uniform_disk, uniform_square};
    use ipch_geom::hull_chain::verify_upper_hull;

    #[test]
    fn matches_oracle_on_random_inputs() {
        for seed in 0..8 {
            for n in [3usize, 10, 100, 1000] {
                let pts = uniform_disk(n, seed);
                let mut st = SeqStats::default();
                let h = upper_hull(&pts, &mut st);
                verify_upper_hull(&pts, &h).unwrap_or_else(|e| panic!("seed {seed} n {n}: {e}"));
                assert_eq!(h, UpperHull::of(&pts), "seed {seed} n {n}");
            }
        }
    }

    #[test]
    fn matches_oracle_on_circle() {
        let pts = on_circle(500, 3);
        let mut st = SeqStats::default();
        let h = upper_hull(&pts, &mut st);
        assert_eq!(h, UpperHull::of(&pts));
    }

    #[test]
    fn work_scales_with_log_h_not_n() {
        // fixed n, growing h: ops should grow roughly like n·log h
        let n = 20_000;
        let mut ops = Vec::new();
        for h in [8usize, 64, 512] {
            let pts = circle_plus_interior(h, n, 7);
            let mut st = SeqStats::default();
            upper_hull(&pts, &mut st);
            ops.push(st.total());
        }
        // h : 8 → 512 is a 64× change but ops should grow far less than 8×
        assert!(
            ops[2] < 8 * ops[0],
            "ops grew too fast: {ops:?} — not output-sensitive"
        );
    }

    #[test]
    fn beats_monotone_on_small_h() {
        let n = 50_000;
        let pts = circle_plus_interior(8, n, 9);
        let mut ks = SeqStats::default();
        upper_hull(&pts, &mut ks);
        let mut mc = SeqStats::default();
        super::super::monotone::upper_hull(&pts, &mut mc);
        assert!(
            ks.total() < mc.total(),
            "KS {} !< monotone {}",
            ks.total(),
            mc.total()
        );
    }

    #[test]
    fn tiny_and_degenerate() {
        let mut st = SeqStats::default();
        assert!(upper_hull(&[], &mut st).is_empty());
        let one = vec![Point2::new(0.0, 1.0)];
        assert_eq!(upper_hull(&one, &mut st).vertices, vec![0]);
        let dup = vec![Point2::new(1.0, 1.0); 5];
        let h = upper_hull(&dup, &mut st);
        assert_eq!(h.vertices.len(), 1);
        let two = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        let h2 = upper_hull(&two, &mut st);
        verify_upper_hull(&two, &h2).unwrap();
    }

    #[test]
    fn square_distribution() {
        for seed in 0..4 {
            let pts = uniform_square(800, seed + 20);
            let mut st = SeqStats::default();
            let h = upper_hull(&pts, &mut st);
            assert_eq!(h, UpperHull::of(&pts), "seed {seed}");
        }
    }
}
