//! Andrew's monotone chain — the O(n log n) (O(n) presorted) baseline.

use ipch_geom::hull_chain::UpperHull;
use ipch_geom::point::argsort_xy;
use ipch_geom::predicates::orient2d_sign;
use ipch_geom::Point2;

use super::SeqStats;

/// Upper hull of points already sorted by (x, y), counting operations.
pub fn upper_hull_sorted(pts: &[Point2], stats: &mut SeqStats) -> UpperHull {
    let mut st: Vec<usize> = Vec::new();
    for i in 0..pts.len() {
        while let Some(&t) = st.last() {
            stats.comparisons += 1;
            if pts[t].x == pts[i].x {
                st.pop();
            } else {
                break;
            }
        }
        while st.len() >= 2 {
            stats.orientation_tests += 1;
            if orient2d_sign(pts[st[st.len() - 2]], pts[st[st.len() - 1]], pts[i]) >= 0 {
                st.pop();
            } else {
                break;
            }
        }
        st.push(i);
    }
    UpperHull::new(st)
}

/// Upper hull of unsorted points (sort + scan), ids into the original
/// (unmoved) array.
pub fn upper_hull(pts: &[Point2], stats: &mut SeqStats) -> UpperHull {
    let order = argsort_xy(pts);
    let nn = pts.len() as u64;
    stats.comparisons += if nn > 1 { nn * nn.ilog2() as u64 } else { 0 };
    let sorted: Vec<Point2> = order.iter().map(|&i| pts[i]).collect();
    let h = upper_hull_sorted(&sorted, stats);
    UpperHull::new(h.vertices.into_iter().map(|i| order[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{circle_plus_interior, uniform_disk};
    use ipch_geom::hull_chain::verify_upper_hull;

    #[test]
    fn matches_oracle() {
        for seed in 0..5 {
            let pts = uniform_disk(500, seed);
            let mut st = SeqStats::default();
            let h = upper_hull(&pts, &mut st);
            verify_upper_hull(&pts, &h).unwrap();
            assert_eq!(h, UpperHull::of(&pts));
            assert!(st.orientation_tests > 0);
        }
    }

    #[test]
    fn linear_tests_on_sorted_input() {
        let pts = circle_plus_interior(50, 2000, 1);
        let sorted = ipch_geom::point::sorted_by_x(&pts);
        let mut st = SeqStats::default();
        upper_hull_sorted(&sorted, &mut st);
        assert!(st.orientation_tests <= 2 * 2000, "{}", st.orientation_tests);
    }
}
