//! Jarvis march (gift wrapping, 1973) — the O(nh) output-sensitive
//! baseline. For small h it beats O(n log n); for h = Θ(n) it degrades to
//! O(n²). The T4 crossover table plots exactly this trade-off against
//! Kirkpatrick–Seidel and the paper's parallel method.

use ipch_geom::predicates::orient2d_sign;
use ipch_geom::{Point2, UpperHull};

use super::SeqStats;

/// Upper hull by wrapping from the leftmost to the rightmost point.
pub fn upper_hull(pts: &[Point2], stats: &mut SeqStats) -> UpperHull {
    let n = pts.len();
    if n == 0 {
        return UpperHull::new(vec![]);
    }
    let start = (0..n).min_by(|&a, &b| pts[a].cmp_xy(&pts[b])).unwrap();
    let end = (0..n)
        .max_by(|&a, &b| {
            // rightmost; among x-ties the highest (upper-hull endpoint)
            pts[a]
                .x
                .partial_cmp(&pts[b].x)
                .unwrap()
                .then(pts[a].y.partial_cmp(&pts[b].y).unwrap())
        })
        .unwrap();
    // among leftmost x-ties the highest starts the upper chain
    let start = (0..n)
        .filter(|&i| pts[i].x == pts[start].x)
        .max_by(|&a, &b| pts[a].y.partial_cmp(&pts[b].y).unwrap())
        .unwrap();

    let mut chain = vec![start];
    let mut cur = start;
    while cur != end {
        // wrap: the next vertex makes every other point lie right of
        // (clockwise from) the directed edge cur → next
        let mut next = usize::MAX;
        for cand in 0..n {
            if cand == cur || pts[cand].x <= pts[cur].x {
                continue;
            }
            if next == usize::MAX {
                next = cand;
                continue;
            }
            stats.orientation_tests += 1;
            let s = orient2d_sign(pts[cur], pts[next], pts[cand]);
            if s > 0 || (s == 0 && pts[cur].dist2(&pts[cand]) > pts[cur].dist2(&pts[next])) {
                next = cand;
            }
        }
        if next == usize::MAX {
            break; // no point strictly right of cur (degenerate x-ties)
        }
        chain.push(next);
        cur = next;
    }
    UpperHull::new(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{circle_plus_interior, collinear_on_line, uniform_disk};
    use ipch_geom::hull_chain::verify_upper_hull;

    #[test]
    fn matches_oracle() {
        for seed in 0..5 {
            let pts = uniform_disk(300, seed);
            let mut st = SeqStats::default();
            let h = upper_hull(&pts, &mut st);
            verify_upper_hull(&pts, &h).unwrap();
            assert_eq!(h, UpperHull::of(&pts), "seed {seed}");
        }
    }

    #[test]
    fn work_scales_with_h() {
        // same n, different h: orientation tests should scale ~h
        let n = 3000;
        let small = circle_plus_interior(8, n, 1);
        let large = circle_plus_interior(512, n, 1);
        let mut s1 = SeqStats::default();
        let mut s2 = SeqStats::default();
        upper_hull(&small, &mut s1);
        upper_hull(&large, &mut s2);
        assert!(
            s2.orientation_tests > 10 * s1.orientation_tests,
            "{} vs {}",
            s1.orientation_tests,
            s2.orientation_tests
        );
    }

    #[test]
    fn collinear_input() {
        let pts = collinear_on_line(100, 1.0, 0.0, 3);
        let mut st = SeqStats::default();
        let h = upper_hull(&pts, &mut st);
        verify_upper_hull(&pts, &h).unwrap();
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn tiny() {
        let mut st = SeqStats::default();
        assert!(upper_hull(&[], &mut st).is_empty());
        let one = vec![Point2::new(0.0, 0.0)];
        assert_eq!(upper_hull(&one, &mut st).vertices, vec![0]);
    }
}
