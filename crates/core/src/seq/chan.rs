//! Chan's algorithm (1996) — the other classic O(n log h) baseline.
//!
//! Chronologically it postdates the paper, but it is the algorithm a
//! modern reader benchmarks output-sensitive hulls against, so the T4
//! table includes it. Scheme: guess m = 2^(2^t); build ⌈n/m⌉ group hulls
//! (monotone chain); gift-wrap across groups using O(log m) tangent
//! queries per step; abort and square the guess after m wrap steps.

use ipch_geom::point::argsort_xy;
use ipch_geom::predicates::orient2d_sign;
use ipch_geom::{Point2, UpperHull};

use super::SeqStats;

/// Upper hull in O(n log h) time.
pub fn upper_hull(pts: &[Point2], stats: &mut SeqStats) -> UpperHull {
    let n = pts.len();
    if n <= 2 {
        let mut v: Vec<usize> = (0..n).collect();
        v.sort_by(|&a, &b| pts[a].cmp_xy(&pts[b]));
        v.dedup_by(|a, b| pts[*a].x == pts[*b].x);
        return UpperHull::new(v);
    }
    let order = argsort_xy(pts);
    let mut t = 1u32;
    loop {
        let m = (1usize << (1usize << t).min(30)).min(n);
        if let Some(h) = attempt(pts, &order, m, stats) {
            return h;
        }
        t += 1;
    }
}

fn attempt(pts: &[Point2], order: &[usize], m: usize, stats: &mut SeqStats) -> Option<UpperHull> {
    let n = pts.len();
    // group hulls over contiguous runs of the sorted order
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for chunk in order.chunks(m) {
        // monotone chain over the chunk (already x-sorted)
        let mut st: Vec<usize> = Vec::new();
        for &i in chunk {
            while let Some(&t) = st.last() {
                if pts[t].x == pts[i].x {
                    st.pop();
                } else {
                    break;
                }
            }
            while st.len() >= 2 {
                stats.orientation_tests += 1;
                if orient2d_sign(pts[st[st.len() - 2]], pts[st[st.len() - 1]], pts[i]) >= 0 {
                    st.pop();
                } else {
                    break;
                }
            }
            st.push(i);
        }
        groups.push(st);
    }

    // gift-wrap from the global leftmost-top to rightmost-top
    let start = *order
        .iter()
        .take_while(|&&i| pts[i].x == pts[order[0]].x)
        .max_by(|&&a, &&b| pts[a].y.partial_cmp(&pts[b].y).unwrap())
        .unwrap();
    let end = *order
        .iter()
        .rev()
        .take_while(|&&i| pts[i].x == pts[order[n - 1]].x)
        .max_by(|&&a, &&b| pts[a].y.partial_cmp(&pts[b].y).unwrap())
        .unwrap();

    let mut chain = vec![start];
    let mut cur = start;
    for _ in 0..m {
        if cur == end {
            return Some(UpperHull::new(chain));
        }
        let mut next: Option<usize> = None;
        for g in &groups {
            if let Some(c) = best_slope_vertex(pts, g, cur, stats) {
                next = match next {
                    None => Some(c),
                    Some(b) => {
                        stats.orientation_tests += 1;
                        let s = orient2d_sign(pts[cur], pts[b], pts[c]);
                        if s > 0 || (s == 0 && pts[cur].dist2(&pts[c]) > pts[cur].dist2(&pts[b])) {
                            Some(c)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
        }
        let nx = next?;
        chain.push(nx);
        cur = nx;
    }
    if cur == end {
        return Some(UpperHull::new(chain));
    }
    None // wrap count exceeded m: guess too small
}

/// The vertex of group hull `g` strictly right of `cur` maximizing the
/// slope from `cur` (the wrap tangent), by binary search on the convex
/// chain — the slope sequence over the suffix is unimodal.
fn best_slope_vertex(
    pts: &[Point2],
    g: &[usize],
    cur: usize,
    stats: &mut SeqStats,
) -> Option<usize> {
    // suffix of vertices with x > cur.x
    let lo = g.partition_point(|&i| pts[i].x <= pts[cur].x);
    let s = &g[lo..];
    if s.is_empty() {
        return None;
    }
    let better = |a: usize, b: usize, stats: &mut SeqStats| -> bool {
        // slope(cur→a) > slope(cur→b)? i.e. a strictly above line cur→b;
        // collinear ties prefer the farther vertex (skips interior
        // collinear points so the wrap stays strict)
        stats.orientation_tests += 1;
        let s = orient2d_sign(pts[cur], pts[b], pts[a]);
        s > 0 || (s == 0 && pts[cur].dist2(&pts[a]) > pts[cur].dist2(&pts[b]))
    };
    let (mut l, mut r) = (0usize, s.len() - 1);
    while l < r {
        let mid = (l + r) / 2;
        if better(s[mid + 1], s[mid], stats) {
            l = mid + 1;
        } else {
            r = mid;
        }
    }
    Some(s[l])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipch_geom::generators::{circle_plus_interior, on_circle, uniform_disk};
    use ipch_geom::hull_chain::verify_upper_hull;

    #[test]
    fn matches_oracle() {
        for seed in 0..6 {
            for n in [1usize, 2, 5, 50, 700] {
                let pts = uniform_disk(n, seed);
                let mut st = SeqStats::default();
                let h = upper_hull(&pts, &mut st);
                verify_upper_hull(&pts, &h).unwrap_or_else(|e| panic!("seed {seed} n {n}: {e}"));
                assert_eq!(h, UpperHull::of(&pts), "seed {seed} n {n}");
            }
        }
    }

    #[test]
    fn all_on_hull() {
        let pts = on_circle(300, 1);
        let mut st = SeqStats::default();
        let h = upper_hull(&pts, &mut st);
        assert_eq!(h, UpperHull::of(&pts));
    }

    #[test]
    fn output_sensitive_ops() {
        let n = 20_000;
        let small = circle_plus_interior(8, n, 2);
        let big = circle_plus_interior(1024, n, 2);
        let mut s1 = SeqStats::default();
        let mut s2 = SeqStats::default();
        upper_hull(&small, &mut s1);
        upper_hull(&big, &mut s2);
        assert!(s1.total() < s2.total());
        assert!(
            s2.total() < 40 * s1.total(),
            "{} vs {}",
            s1.total(),
            s2.total()
        );
    }
}
