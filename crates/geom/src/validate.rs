//! Typed input validation for the public hull/LP entry points.
//!
//! The robust predicates ([`crate::predicates`]) earn correct *orientation
//! decisions* on any finite input, but nothing downstream is specified for
//! NaN or infinite coordinates: a NaN poisons every comparison it meets
//! (`cmp_xy` declares an arbitrary order, the expansion arithmetic produces
//! NaN certificates), and an infinity overflows the two-product splitter.
//! Duplicate points are a second hazard class — legal for some algorithms
//! (the monotone chain dedups naturally), fatal for others (the 3-D
//! gift-wrap's supporting-plane search assumes distinct points).
//!
//! Rather than let each algorithm fail downstream in its own way, the
//! supervised entry points validate up front and reject with a typed
//! [`InputError`] naming the offending index. Validation is `O(n)` for
//! finiteness and `O(n log n)` for duplicate detection (an index sort, no
//! hashing of floats) — both dominated by any hull computation.

use crate::point::{Point2, Point3};

/// Typed rejection of a malformed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InputError {
    /// A point coordinate is NaN or infinite.
    NonFinite {
        /// Index of the offending point in the input slice.
        index: usize,
        /// Which coordinate (`"x"`, `"y"` or `"z"`).
        axis: &'static str,
    },
    /// Two input points are identical (for algorithms that require
    /// distinct points).
    Duplicate {
        /// Index of the later duplicate.
        index: usize,
        /// Index of its first occurrence.
        first: usize,
    },
    /// A scalar query parameter (an LP direction, an abscissa) is NaN or
    /// infinite.
    NonFiniteQuery {
        /// Name of the parameter.
        name: &'static str,
    },
    /// The input has fewer points than the algorithm is defined on.
    TooFew {
        /// Points provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
}

impl InputError {
    /// Stable machine-readable code for wire serialization and logs.
    pub fn code(&self) -> &'static str {
        match self {
            InputError::NonFinite { .. } => "non_finite_coordinate",
            InputError::Duplicate { .. } => "duplicate_point",
            InputError::NonFiniteQuery { .. } => "non_finite_query",
            InputError::TooFew { .. } => "too_few_points",
        }
    }
}

impl std::fmt::Display for InputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputError::NonFinite { index, axis } => {
                write!(f, "point {index}: {axis} coordinate is not finite")
            }
            InputError::Duplicate { index, first } => {
                write!(f, "point {index} duplicates point {first}")
            }
            InputError::NonFiniteQuery { name } => {
                write!(f, "query parameter `{name}` is not finite")
            }
            InputError::TooFew { got, need } => {
                write!(f, "{got} points where at least {need} are required")
            }
        }
    }
}

impl std::error::Error for InputError {}

/// Reject the first non-finite coordinate among `points`.
pub fn ensure_finite2(points: &[Point2]) -> Result<(), InputError> {
    for (index, p) in points.iter().enumerate() {
        if !p.x.is_finite() {
            return Err(InputError::NonFinite { index, axis: "x" });
        }
        if !p.y.is_finite() {
            return Err(InputError::NonFinite { index, axis: "y" });
        }
    }
    Ok(())
}

/// Reject the first non-finite coordinate among 3-D `points`.
pub fn ensure_finite3(points: &[Point3]) -> Result<(), InputError> {
    for (index, p) in points.iter().enumerate() {
        if !p.x.is_finite() {
            return Err(InputError::NonFinite { index, axis: "x" });
        }
        if !p.y.is_finite() {
            return Err(InputError::NonFinite { index, axis: "y" });
        }
        if !p.z.is_finite() {
            return Err(InputError::NonFinite { index, axis: "z" });
        }
    }
    Ok(())
}

/// Reject a non-finite scalar query parameter.
pub fn ensure_query(name: &'static str, v: f64) -> Result<(), InputError> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(InputError::NonFiniteQuery { name })
    }
}

/// Reject duplicate 2-D points. Index-sort by the lexicographic order, then
/// scan adjacent pairs; the reported pair is (first occurrence, smallest
/// later index), deterministically.
pub fn ensure_distinct2(points: &[Point2]) -> Result<(), InputError> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| points[a].cmp_xy(&points[b]).then(a.cmp(&b)));
    for w in idx.windows(2) {
        let (a, b) = (w[0], w[1]);
        if points[a] == points[b] {
            return Err(InputError::Duplicate {
                index: a.max(b),
                first: a.min(b),
            });
        }
    }
    Ok(())
}

/// Reject duplicate 3-D points (same scheme as [`ensure_distinct2`]).
pub fn ensure_distinct3(points: &[Point3]) -> Result<(), InputError> {
    let key = |p: &Point3| (p.x, p.y, p.z);
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        key(&points[a])
            .partial_cmp(&key(&points[b]))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for w in idx.windows(2) {
        let (a, b) = (w[0], w[1]);
        if points[a] == points[b] {
            return Err(InputError::Duplicate {
                index: a.max(b),
                first: a.min(b),
            });
        }
    }
    Ok(())
}

/// Reject inputs below a minimum size.
pub fn ensure_at_least(points_len: usize, need: usize) -> Result<(), InputError> {
    if points_len < need {
        Err(InputError::TooFew {
            got: points_len,
            need,
        })
    } else {
        Ok(())
    }
}

/// Full 2-D hull-entry validation: finite coordinates and distinct points.
pub fn validate_points2(points: &[Point2]) -> Result<(), InputError> {
    ensure_finite2(points)?;
    ensure_distinct2(points)
}

/// Full 3-D hull-entry validation: finite coordinates and distinct points.
pub fn validate_points3(points: &[Point3]) -> Result<(), InputError> {
    ensure_finite3(points)?;
    ensure_distinct3(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point2> {
        v.iter().map(|&(x, y)| Point2 { x, y }).collect()
    }

    #[test]
    fn finite_distinct_input_passes() {
        let p = pts(&[(0.0, 0.0), (1.0, 2.0), (3.0, -1.0)]);
        assert_eq!(validate_points2(&p), Ok(()));
    }

    #[test]
    fn nan_coordinate_is_rejected_with_index_and_axis() {
        let p = pts(&[(0.0, 0.0), (f64::NAN, 1.0)]);
        assert_eq!(
            validate_points2(&p),
            Err(InputError::NonFinite {
                index: 1,
                axis: "x"
            })
        );
        let p = pts(&[(0.0, f64::INFINITY)]);
        assert_eq!(
            validate_points2(&p),
            Err(InputError::NonFinite {
                index: 0,
                axis: "y"
            })
        );
    }

    #[test]
    fn duplicate_points_are_rejected_with_both_indices() {
        let p = pts(&[(1.0, 1.0), (2.0, 2.0), (1.0, 1.0), (1.0, 1.0)]);
        assert_eq!(
            validate_points2(&p),
            Err(InputError::Duplicate { index: 2, first: 0 })
        );
    }

    #[test]
    fn negative_zero_equals_positive_zero() {
        // -0.0 == 0.0 in IEEE comparison; such "distinct" representations
        // are the same geometric point and must be caught.
        let p = pts(&[(0.0, 1.0), (-0.0, 1.0)]);
        assert_eq!(
            validate_points2(&p),
            Err(InputError::Duplicate { index: 1, first: 0 })
        );
    }

    #[test]
    fn three_d_validation_covers_each_axis() {
        let mk = |x, y, z| Point3 { x, y, z };
        assert_eq!(
            validate_points3(&[mk(0.0, 0.0, f64::NEG_INFINITY)]),
            Err(InputError::NonFinite {
                index: 0,
                axis: "z"
            })
        );
        assert_eq!(
            validate_points3(&[mk(0.0, 1.0, 2.0), mk(0.0, 1.0, 2.0)]),
            Err(InputError::Duplicate { index: 1, first: 0 })
        );
        assert_eq!(
            validate_points3(&[mk(0.0, 1.0, 2.0), mk(0.0, 1.0, 3.0)]),
            Ok(())
        );
    }

    #[test]
    fn query_and_size_guards() {
        assert_eq!(ensure_query("x0", 1.5), Ok(()));
        assert_eq!(
            ensure_query("x0", f64::NAN),
            Err(InputError::NonFiniteQuery { name: "x0" })
        );
        assert_eq!(ensure_at_least(3, 2), Ok(()));
        assert_eq!(
            ensure_at_least(1, 2),
            Err(InputError::TooFew { got: 1, need: 2 })
        );
    }

    #[test]
    fn errors_render_and_carry_stable_codes() {
        let cases = [
            (
                InputError::NonFinite {
                    index: 4,
                    axis: "y",
                },
                "non_finite_coordinate",
            ),
            (
                InputError::Duplicate { index: 7, first: 2 },
                "duplicate_point",
            ),
            (
                InputError::NonFiniteQuery { name: "y0" },
                "non_finite_query",
            ),
            (InputError::TooFew { got: 0, need: 1 }, "too_few_points"),
        ];
        for (e, code) in cases {
            assert_eq!(e.code(), code);
            let dyn_err: &dyn std::error::Error = &e;
            assert!(!dyn_err.to_string().is_empty());
        }
    }
}
