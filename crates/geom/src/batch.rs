//! Concatenated multi-instance point layout for batched (fused) runs.
//!
//! The serving runtime coalesces many small hull requests into one machine
//! run. The fused kernels want one contiguous input, while certificates,
//! result slicing and ledger resolution stay per member. [`ConcatPoints2`]
//! is that bridge: every member's points concatenated into one buffer, an
//! offset table delimiting the members, and a [`crate::soa::PointsSoA`]
//! view over the whole concatenation so kernel closures stream dense
//! coordinate columns.
//!
//! Vertex ids inside a member stay **member-local** (ids into that
//! member's own slice) — each request's response indexes its own point
//! array, exactly as an unbatched run would.

use crate::soa::PointsSoA;
use crate::Point2;

/// Points of many instances concatenated, plus the member offset table.
#[derive(Clone, Debug, Default)]
pub struct ConcatPoints2 {
    /// All members' points, back to back (member g occupies
    /// `offsets[g]..offsets[g + 1]`).
    points: Vec<Point2>,
    /// Member boundaries; `len() == member_count() + 1`, first `0`, last
    /// `points.len()`.
    offsets: Vec<usize>,
}

impl ConcatPoints2 {
    /// Concatenate `members` (order preserved; empty members are legal).
    pub fn from_members(members: &[&[Point2]]) -> Self {
        let total = members.iter().map(|m| m.len()).sum();
        let mut points = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(members.len() + 1);
        offsets.push(0);
        for m in members {
            points.extend_from_slice(m);
            offsets.push(points.len());
        }
        Self { points, offsets }
    }

    /// Number of member instances.
    pub fn member_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total concatenated point count.
    pub fn total_len(&self) -> usize {
        self.points.len()
    }

    /// True when no member holds any point.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Member `g`'s concatenated index range.
    pub fn member_range(&self, g: usize) -> std::ops::Range<usize> {
        self.offsets[g]..self.offsets[g + 1]
    }

    /// Member `g`'s points (result slicing: local ids index this slice).
    pub fn member(&self, g: usize) -> &[Point2] {
        &self.points[self.member_range(g)]
    }

    /// The whole concatenation as one slice.
    pub fn all(&self) -> &[Point2] {
        &self.points
    }

    /// The offset table (length `member_count() + 1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Structure-of-arrays view over the whole concatenation, for kernels
    /// that stream one coordinate column.
    pub fn soa(&self) -> PointsSoA {
        PointsSoA::from_points(&self.points)
    }

    /// Which member a concatenated index belongs to (binary search over the
    /// offset table; callers in kernel closures pay O(log B) index
    /// arithmetic per virtual processor, like the div/mod decoding of the
    /// brute oracle's pair space).
    pub fn member_of(&self, concat_index: usize) -> usize {
        debug_assert!(concat_index < self.points.len());
        match self.offsets.binary_search(&concat_index) {
            // offsets may repeat at empty members: land on the run's last
            // boundary, which is the (only) non-empty owner's start
            Ok(mut g) => {
                while g + 1 < self.offsets.len() && self.offsets[g + 1] == concat_index {
                    g += 1;
                }
                g
            }
            Err(g) => g - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2 { x, y }
    }

    #[test]
    fn concat_slices_and_offsets() {
        let a = vec![p(0.0, 0.0), p(1.0, 1.0)];
        let b: Vec<Point2> = vec![];
        let c = vec![p(5.0, 2.0), p(6.0, 3.0), p(7.0, 4.0)];
        let cat = ConcatPoints2::from_members(&[&a, &b, &c]);
        assert_eq!(cat.member_count(), 3);
        assert_eq!(cat.total_len(), 5);
        assert_eq!(cat.offsets(), &[0, 2, 2, 5]);
        assert_eq!(cat.member(0), &a[..]);
        assert!(cat.member(1).is_empty());
        assert_eq!(cat.member(2), &c[..]);
        assert_eq!(cat.soa().xs(), &[0.0, 1.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn member_of_inverts_the_offsets() {
        let a = vec![p(0.0, 0.0), p(1.0, 1.0)];
        let b: Vec<Point2> = vec![];
        let c = vec![p(5.0, 2.0)];
        let cat = ConcatPoints2::from_members(&[&a, &b, &c]);
        assert_eq!(cat.member_of(0), 0);
        assert_eq!(cat.member_of(1), 0);
        assert_eq!(cat.member_of(2), 2);
        for g in 0..cat.member_count() {
            for i in cat.member_range(g) {
                assert_eq!(cat.member_of(i), g);
            }
        }
    }
}
