//! Upper-hull chains: reference construction, queries, verification.
//!
//! The paper's 2-D algorithms all output the *upper hull*: "a convex chain
//! monotone in the x-direction that curves to the right as one traverses it
//! by increasing x-coordinates" (footnote 3), with every input point holding
//! a pointer to the hull edge above (or through) it. This module provides:
//!
//! * [`upper_hull_indices`] — the O(n log n) / O(n)-on-sorted monotone-chain
//!   oracle every algorithm is verified against,
//! * [`UpperHull`] — a chain with the paper's output convention
//!   (`edge_above` per point),
//! * [`verify_upper_hull`] — an independent checker (monotone, strictly
//!   convex, covers all points) used by the test suites, deliberately not
//!   sharing code with the oracle.

use crate::point::Point2;
use crate::predicates::{orient2d_sign, Orientation};

/// Upper hull of `pts` **already sorted** by [`Point2::cmp_xy`]; returns
/// vertex indices into `pts`, left to right. Runs in O(n).
///
/// Duplicate points and x-ties are handled: among points sharing an x, only
/// the highest can be a vertex. Strictly convex output — no three collinear
/// vertices (collinear mid-points are dropped, matching footnote 3's
/// "curves to the right").
pub fn upper_hull_indices_sorted(pts: &[Point2]) -> Vec<usize> {
    let mut st: Vec<usize> = Vec::new();
    for i in 0..pts.len() {
        // Same-x handling: the incoming point has y ≥ top's y (sort order),
        // so it vertically dominates the top.
        while let Some(&t) = st.last() {
            if pts[t].x == pts[i].x {
                st.pop();
            } else {
                break;
            }
        }
        while st.len() >= 2 {
            let a = pts[st[st.len() - 2]];
            let b = pts[st[st.len() - 1]];
            // pop while a→b→i fails to turn strictly clockwise
            if orient2d_sign(a, b, pts[i]) >= 0 {
                st.pop();
            } else {
                break;
            }
        }
        st.push(i);
    }
    st
}

/// Upper hull of arbitrary (unsorted) `pts`: returns indices **into `pts`**
/// of the hull vertices in left-to-right order. O(n log n). The input is
/// never reordered (in-place discipline).
pub fn upper_hull_indices(pts: &[Point2]) -> Vec<usize> {
    let order = crate::point::argsort_xy(pts);
    let sorted: Vec<Point2> = order.iter().map(|&i| pts[i]).collect();
    upper_hull_indices_sorted(&sorted)
        .into_iter()
        .map(|i| order[i])
        .collect()
}

/// An upper hull: vertex ids (into some point array) in increasing-x order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpperHull {
    /// Hull vertex indices, left to right.
    pub vertices: Vec<usize>,
}

impl UpperHull {
    /// Build from a vertex list (assumed valid; see [`verify_upper_hull`]).
    pub fn new(vertices: Vec<usize>) -> Self {
        Self { vertices }
    }

    /// Construct the hull of `pts` via the monotone-chain oracle.
    pub fn of(pts: &[Point2]) -> Self {
        Self::new(upper_hull_indices(pts))
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True if the hull has no vertices (empty input).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Number of edges `h` — the paper's output-size parameter.
    pub fn num_edges(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }

    /// The edge `(u, v)` above query point `q`: the hull edge whose x-span
    /// contains `q.x` (binary search, O(log h)). Returns vertex *ids*.
    /// `None` if `q.x` is outside the hull's x-range or the hull is a
    /// single vertex.
    pub fn edge_above(&self, pts: &[Point2], q: Point2) -> Option<(usize, usize)> {
        if self.vertices.len() < 2 {
            return None;
        }
        let xs = |i: usize| pts[self.vertices[i]].x;
        if q.x < xs(0) || q.x > xs(self.vertices.len() - 1) {
            return None;
        }
        // binary search for the last vertex with x <= q.x
        let (mut lo, mut hi) = (0usize, self.vertices.len() - 1);
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if xs(mid) <= q.x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        if q.x >= xs(lo) && q.x <= xs(lo + 1) {
            Some((self.vertices[lo], self.vertices[lo + 1]))
        } else {
            None
        }
    }

    /// y-coordinate of the hull chain at abscissa `x` (linear interpolation
    /// along the covering edge). `None` outside the hull's x-range.
    pub fn y_at(&self, pts: &[Point2], x: f64) -> Option<f64> {
        if self.vertices.len() == 1 {
            let p = pts[self.vertices[0]];
            return if p.x == x { Some(p.y) } else { None };
        }
        let (u, v) = self.edge_above(pts, Point2::new(x, 0.0))?;
        let (pu, pv) = (pts[u], pts[v]);
        if pu.x == pv.x {
            return Some(pu.y.max(pv.y));
        }
        let t = (x - pu.x) / (pv.x - pu.x);
        Some(pu.y + t * (pv.y - pu.y))
    }
}

/// Independently verify that `hull` is the upper hull of `pts`.
///
/// Checks: (1) vertices strictly increase in x; (2) consecutive triples turn
/// strictly clockwise; (3) every input point lies on or below the chain and
/// within its x-span (or vertically below an endpoint); (4) every hull
/// vertex is an input point id in range. Returns a description of the first
/// violation.
pub fn verify_upper_hull(pts: &[Point2], hull: &UpperHull) -> Result<(), String> {
    let vs = &hull.vertices;
    if pts.is_empty() {
        return if vs.is_empty() {
            Ok(())
        } else {
            Err("hull nonempty for empty input".into())
        };
    }
    if vs.is_empty() {
        return Err("hull empty for nonempty input".into());
    }
    for &v in vs {
        if v >= pts.len() {
            return Err(format!("vertex id {v} out of range"));
        }
    }
    for w in vs.windows(2) {
        if pts[w[0]].x >= pts[w[1]].x {
            return Err(format!(
                "vertices {}..{} not strictly increasing in x",
                w[0], w[1]
            ));
        }
    }
    for w in vs.windows(3) {
        if orient2d_sign(pts[w[0]], pts[w[1]], pts[w[2]]) >= 0 {
            return Err(format!(
                "vertices {} {} {} do not turn strictly clockwise",
                w[0], w[1], w[2]
            ));
        }
    }
    let first = pts[vs[0]];
    let last = pts[vs[vs.len() - 1]];
    for (i, &p) in pts.iter().enumerate() {
        if p.x < first.x || p.x > last.x {
            return Err(format!("point {i} outside hull x-span"));
        }
        if p.x == first.x && p.y > first.y {
            return Err(format!("point {i} above left hull endpoint"));
        }
        if p.x == last.x && p.y > last.y {
            return Err(format!("point {i} above right hull endpoint"));
        }
        if vs.len() >= 2 {
            if let Some((u, v)) = hull.edge_above(pts, p) {
                if orient2d_sign(pts[u], pts[v], p) > 0 {
                    return Err(format!("point {i} strictly above edge ({u},{v})"));
                }
            }
        }
    }
    Ok(())
}

/// Full convex hull (counter-clockwise, starting from the lexicographically
/// smallest point) via the standard Andrew monotone-chain construction.
/// Used by baselines and by the 3-D algorithm's projections.
pub fn convex_hull_indices(pts: &[Point2]) -> Vec<usize> {
    let order = crate::point::argsort_xy(pts);
    // drop exact duplicates (keep the first occurrence in sorted order)
    let mut ids: Vec<usize> = Vec::with_capacity(order.len());
    for &i in &order {
        if let Some(&last) = ids.last() {
            if pts[last] == pts[i] {
                continue;
            }
        }
        ids.push(i);
    }
    let k = ids.len();
    if k <= 2 {
        return ids;
    }
    let chain = |iter: &mut dyn Iterator<Item = usize>| -> Vec<usize> {
        let mut st: Vec<usize> = Vec::new();
        for i in iter {
            while st.len() >= 2
                && orient2d_sign(pts[st[st.len() - 2]], pts[st[st.len() - 1]], pts[i]) <= 0
            {
                st.pop();
            }
            st.push(i);
        }
        st
    };
    let lower = chain(&mut ids.iter().copied());
    let upper = chain(&mut ids.iter().rev().copied());
    let mut out = lower;
    out.pop();
    out.extend_from_slice(&upper[..upper.len() - 1]);
    out
}

/// Check `o` against `Orientation::Clockwise` turns along a vertex cycle.
/// Convenience for tests on [`convex_hull_indices`] output (CCW polygons
/// turn counter-clockwise at every vertex when area > 0).
pub fn is_ccw_convex_polygon(pts: &[Point2], cycle: &[usize]) -> bool {
    let k = cycle.len();
    if k < 3 {
        return true;
    }
    (0..k).all(|i| {
        let a = pts[cycle[i]];
        let b = pts[cycle[(i + 1) % k]];
        let c = pts[cycle[(i + 2) % k]];
        crate::predicates::orient2d(a, b, c) == Orientation::CounterClockwise
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn hull_of_triangle() {
        let pts = vec![p(0.0, 0.0), p(2.0, 0.0), p(1.0, 1.0)];
        let h = UpperHull::of(&pts);
        assert_eq!(h.vertices, vec![0, 2, 1]);
        verify_upper_hull(&pts, &h).unwrap();
    }

    #[test]
    fn hull_trivial_sizes() {
        assert!(UpperHull::of(&[]).is_empty());
        let one = vec![p(1.0, 1.0)];
        let h = UpperHull::of(&one);
        assert_eq!(h.vertices, vec![0]);
        verify_upper_hull(&one, &h).unwrap();
        let two = vec![p(0.0, 0.0), p(1.0, 1.0)];
        let h2 = UpperHull::of(&two);
        assert_eq!(h2.num_edges(), 1);
        verify_upper_hull(&two, &h2).unwrap();
    }

    #[test]
    fn collinear_points_collapse_to_endpoints() {
        let pts: Vec<Point2> = (0..10).map(|i| p(i as f64, 2.0 * i as f64)).collect();
        let h = UpperHull::of(&pts);
        assert_eq!(h.vertices, vec![0, 9], "strictly convex chain");
        verify_upper_hull(&pts, &h).unwrap();
    }

    #[test]
    fn duplicates_and_x_ties() {
        let pts = vec![
            p(0.0, 0.0),
            p(0.0, 2.0),
            p(0.0, 1.0),
            p(1.0, 0.0),
            p(1.0, 0.0),
        ];
        let h = UpperHull::of(&pts);
        verify_upper_hull(&pts, &h).unwrap();
        assert_eq!(h.vertices.len(), 2);
        assert_eq!(pts[h.vertices[0]], p(0.0, 2.0));
    }

    #[test]
    fn concave_point_excluded() {
        let pts = vec![p(0.0, 0.0), p(1.0, 0.5), p(2.0, 2.0), p(3.0, 0.0)];
        let h = UpperHull::of(&pts);
        assert_eq!(h.vertices, vec![0, 2, 3]);
        verify_upper_hull(&pts, &h).unwrap();
    }

    #[test]
    fn edge_above_queries() {
        let pts = vec![
            p(0.0, 0.0),
            p(2.0, 2.0),
            p(4.0, 0.0),
            p(1.0, 0.0),
            p(3.0, 0.5),
        ];
        let h = UpperHull::of(&pts);
        assert_eq!(h.edge_above(&pts, p(1.0, 0.0)), Some((0, 1)));
        assert_eq!(h.edge_above(&pts, p(3.0, 0.5)), Some((1, 2)));
        // a query exactly at a vertex x belongs to the edge starting there
        assert_eq!(h.edge_above(&pts, p(2.0, 0.0)), Some((1, 2)));
        assert_eq!(h.edge_above(&pts, p(-1.0, 0.0)), None);
        assert_eq!(h.edge_above(&pts, p(5.0, 0.0)), None);
        assert_eq!(h.y_at(&pts, 1.0), Some(1.0));
        assert_eq!(h.y_at(&pts, 3.0), Some(1.0));
    }

    #[test]
    fn verify_catches_bad_hulls() {
        let pts = vec![p(0.0, 0.0), p(1.0, 1.0), p(2.0, 0.0)];
        // missing apex: point 1 is above the chain 0→2
        let bad = UpperHull::new(vec![0, 2]);
        assert!(verify_upper_hull(&pts, &bad).is_err());
        // not clockwise
        let bad2 = UpperHull::new(vec![0, 1, 2, 1]);
        assert!(verify_upper_hull(&pts, &bad2).is_err());
        // out of range id
        let bad3 = UpperHull::new(vec![0, 7]);
        assert!(verify_upper_hull(&pts, &bad3).is_err());
        // good hull passes
        verify_upper_hull(&pts, &UpperHull::new(vec![0, 1, 2])).unwrap();
    }

    #[test]
    fn full_hull_square() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
            p(0.5, 0.5),
        ];
        let cycle = convex_hull_indices(&pts);
        assert_eq!(cycle.len(), 4);
        assert!(is_ccw_convex_polygon(&pts, &cycle));
        assert!(!cycle.contains(&4));
    }

    #[test]
    fn full_hull_collinear_and_tiny() {
        let pts = vec![p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)];
        let cycle = convex_hull_indices(&pts);
        assert_eq!(cycle.len(), 2);
        assert!(convex_hull_indices(&[]).is_empty());
        assert_eq!(convex_hull_indices(&[p(3.0, 3.0)]), vec![0]);
    }

    #[test]
    fn oracle_on_random_inputs_respects_verifier() {
        let mut s = 1u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 10.0
        };
        for n in [3usize, 5, 17, 100, 500] {
            let pts: Vec<Point2> = (0..n).map(|_| p(next(), next())).collect();
            let h = UpperHull::of(&pts);
            verify_upper_hull(&pts, &h).unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }
}
