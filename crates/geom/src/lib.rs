//! # ipch-geom — computational-geometry substrate
//!
//! Geometry layer for the Ghouse–Goodrich SPAA'91 reproduction:
//!
//! * [`point`] — `Point2`/`Point3` value types.
//! * [`batch`] — concatenated multi-instance layout (offset table + SoA
//!   view) for the serving runtime's fused batch runs.
//! * [`exact`] — floating-point expansion arithmetic (two-sum / two-product
//!   building blocks à la Shewchuk) used by the exact predicate fallbacks.
//! * [`predicates`] — robust `orient2d` / `orient3d`: a cheap f64 filter
//!   with a statically derived error bound, falling back to the exact
//!   expansion evaluation when the filter cannot decide. The PRAM model
//!   assumes unit-cost exact comparisons; robust predicates are how a real
//!   implementation earns the same decisions on degenerate inputs.
//! * [`hull_chain`] — upper-hull chains, reference monotone-chain oracle,
//!   and verification routines (convexity, coverage, pointer consistency).
//! * [`hullops`] — the *point-hull-invariant* primitives of paper §2.4
//!   (Atallah–Goodrich two-polygon operations): line ∩ upper hull, common
//!   tangent of two upper hulls, hull–hull intersection.
//! * [`soa`] — structure-of-arrays point columns and the canonical
//!   order-isomorphic f64 ↔ i64 key mapping, feeding the data-parallel
//!   kernel backend contiguous, vectorizable inner loops.
//! * [`generators`] / [`gen3d`] — workload generators with controlled hull
//!   size `h` (the knob every output-sensitivity experiment sweeps).
//! * [`validate`] — typed input validation ([`InputError`]) shared by the
//!   public entry points: finite coordinates, distinct points, finite query
//!   parameters.

pub mod batch;
pub mod exact;
pub mod gen3d;
pub mod generators;
pub mod hull_chain;
pub mod hullops;
pub mod point;
pub mod predicates;
pub mod soa;
pub mod validate;

pub use batch::ConcatPoints2;
pub use hull_chain::UpperHull;
pub use point::{Point2, Point3};
pub use predicates::{orient2d, orient3d, Orientation};
pub use soa::PointsSoA;
pub use validate::InputError;
