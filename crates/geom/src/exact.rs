//! Floating-point expansion arithmetic (Shewchuk-style).
//!
//! An *expansion* is a sum of f64 components, ordered by increasing
//! magnitude and non-overlapping, representing a real number exactly. The
//! classic error-free transformations — `two_sum`, `two_diff`,
//! `two_product` — produce exact two-term expansions; sums and scalings of
//! expansions stay exact. The sign of an expansion is the sign of its
//! largest-magnitude (last non-zero) component.
//!
//! This module provides just enough machinery for exact 2×2 and 3×3
//! determinants of coordinate differences, i.e. exact `orient2d` /
//! `orient3d` fallbacks. Components are kept in `Vec`s; the exact path only
//! runs when the floating-point filter in [`crate::predicates`] cannot
//! decide, which is rare on random inputs and bounded on adversarial ones.

/// Exact sum: returns `(x, y)` with `x + y = a + b` exactly and `x = fl(a+b)`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bv = x - a;
    let av = x - bv;
    let br = b - bv;
    let ar = a - av;
    (x, ar + br)
}

/// Exact difference: `(x, y)` with `x + y = a - b` exactly.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let x = a - b;
    let bv = a - x;
    let av = x + bv;
    let br = bv - b;
    let ar = a - av;
    (x, ar + br)
}

/// Exact product via fused multiply-add: `(x, y)` with `x + y = a * b`.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let y = a.mul_add(b, -x);
    (x, y)
}

/// An exact multi-term expansion. Invariant: components ascend in magnitude
/// and are non-overlapping; zeros are eliminated. The empty expansion is 0.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Expansion {
    comps: Vec<f64>,
}

impl Expansion {
    /// The zero expansion.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Expansion of one f64.
    pub fn from_f64(v: f64) -> Self {
        let mut e = Self::zero();
        if v != 0.0 {
            e.comps.push(v);
        }
        e
    }

    /// Expansion of an exact two-term pair `(hi, lo)` (e.g. a `two_product`).
    pub fn from_two(hi: f64, lo: f64) -> Self {
        let mut e = Self::zero();
        if lo != 0.0 {
            e.comps.push(lo);
        }
        if hi != 0.0 {
            e.comps.push(hi);
        }
        e
    }

    /// Number of stored components.
    pub fn len(&self) -> usize {
        self.comps.len()
    }

    /// True if the expansion represents zero.
    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }

    /// Exact sum of two expansions (fast-expansion-sum with zero
    /// elimination).
    pub fn add(&self, other: &Expansion) -> Expansion {
        // Merge by magnitude, then a single distillation pass.
        let mut merged: Vec<f64> = Vec::with_capacity(self.comps.len() + other.comps.len());
        let (mut i, mut j) = (0, 0);
        while i < self.comps.len() && j < other.comps.len() {
            if self.comps[i].abs() <= other.comps[j].abs() {
                merged.push(self.comps[i]);
                i += 1;
            } else {
                merged.push(other.comps[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.comps[i..]);
        merged.extend_from_slice(&other.comps[j..]);

        let mut out = Vec::with_capacity(merged.len());
        let mut q = 0.0f64;
        for &c in &merged {
            let (s, e) = two_sum(q, c);
            if e != 0.0 {
                out.push(e);
            }
            q = s;
        }
        if q != 0.0 {
            out.push(q);
        }
        // One distillation pass can leave overlap in pathological cases;
        // repeat until stable (terminates quickly in practice).
        let mut exp = Expansion { comps: out };
        if !exp.is_normalized() {
            exp = Expansion::zero().add_distilled(&exp);
        }
        exp
    }

    fn add_distilled(&self, other: &Expansion) -> Expansion {
        let mut all: Vec<f64> = self
            .comps
            .iter()
            .chain(other.comps.iter())
            .copied()
            .collect();
        all.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap());
        loop {
            let mut out: Vec<f64> = Vec::with_capacity(all.len());
            let mut q = 0.0f64;
            for &c in &all {
                let (s, e) = two_sum(q, c);
                if e != 0.0 {
                    out.push(e);
                }
                q = s;
            }
            if q != 0.0 {
                out.push(q);
            }
            let exp = Expansion { comps: out };
            if exp.is_normalized() {
                return exp;
            }
            all = exp.comps;
        }
    }

    fn is_normalized(&self) -> bool {
        self.comps.windows(2).all(|w| w[0].abs() <= w[1].abs())
    }

    /// Exact difference.
    pub fn sub(&self, other: &Expansion) -> Expansion {
        self.add(&other.neg())
    }

    /// Exact negation.
    pub fn neg(&self) -> Expansion {
        Expansion {
            comps: self.comps.iter().map(|c| -c).collect(),
        }
    }

    /// Exact product by a scalar (scale-expansion with zero elimination).
    pub fn scale(&self, b: f64) -> Expansion {
        if b == 0.0 || self.is_empty() {
            return Expansion::zero();
        }
        let mut acc = Expansion::zero();
        for &c in &self.comps {
            let (hi, lo) = two_product(c, b);
            acc = acc.add(&Expansion::from_two(hi, lo));
        }
        acc
    }

    /// Exact product of two expansions.
    pub fn mul(&self, other: &Expansion) -> Expansion {
        let mut acc = Expansion::zero();
        for &c in &other.comps {
            acc = acc.add(&self.scale(c));
        }
        acc
    }

    /// Sign of the represented value: -1, 0 or +1. Exact.
    pub fn sign(&self) -> i32 {
        match self.comps.last() {
            None => 0,
            Some(&c) => {
                if c > 0.0 {
                    1
                } else if c < 0.0 {
                    -1
                } else {
                    0
                }
            }
        }
    }

    /// Approximate (rounded) value — for diagnostics only.
    pub fn approx(&self) -> f64 {
        self.comps.iter().sum()
    }
}

/// Exact 2×2 determinant `| a b ; c d |` where each entry is an exact
/// two-term expansion (as produced by [`two_diff`]).
pub fn det2_exact(a: (f64, f64), b: (f64, f64), c: (f64, f64), d: (f64, f64)) -> Expansion {
    let ea = Expansion::from_two(a.0, a.1);
    let eb = Expansion::from_two(b.0, b.1);
    let ec = Expansion::from_two(c.0, c.1);
    let ed = Expansion::from_two(d.0, d.1);
    ea.mul(&ed).sub(&eb.mul(&ec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_exact() {
        let (x, y) = two_sum(1e16, 1.0);
        assert_eq!(x + y, 1e16 + 1.0); // rounded view
                                       // exactness: reconstruct via expansion
        let e = Expansion::from_two(x, y);
        assert_eq!(e.sign(), 1);
        let (x2, y2) = two_sum(0.1, 0.2);
        assert!(y2 != 0.0, "0.1 + 0.2 has a rounding tail");
        assert_eq!(x2, 0.1 + 0.2);
    }

    #[test]
    fn two_product_exact() {
        let (x, y) = two_product(1.0 + f64::EPSILON, 1.0 + f64::EPSILON);
        // (1+e)^2 = 1 + 2e + e^2; the e^2 term is the tail
        assert_eq!(x, 1.0 + 2.0 * f64::EPSILON);
        assert_eq!(y, f64::EPSILON * f64::EPSILON);
    }

    #[test]
    fn expansion_add_sign() {
        let a = Expansion::from_f64(1e-30);
        let b = Expansion::from_f64(1e30);
        let s = a.add(&b.neg()).add(&b);
        assert_eq!(s.sign(), 1);
        assert_eq!(s.approx(), 1e-30);
    }

    #[test]
    fn expansion_cancellation_to_zero() {
        let a = Expansion::from_f64(0.1).add(&Expansion::from_f64(0.2));
        let b = Expansion::from_f64(0.2).add(&Expansion::from_f64(0.1));
        assert_eq!(a.sub(&b).sign(), 0);
    }

    #[test]
    fn scale_and_mul() {
        let a = Expansion::from_f64(3.0);
        assert_eq!(a.scale(2.0).approx(), 6.0);
        let b = Expansion::from_two(
            two_product(1e8 + 1.0, 1e8 - 1.0).0,
            two_product(1e8 + 1.0, 1e8 - 1.0).1,
        );
        // (1e8+1)(1e8-1) = 1e16 - 1 exactly
        assert_eq!(b.sign(), 1);
        let c = b.sub(&Expansion::from_f64(1e16));
        assert_eq!(c.approx(), -1.0);
    }

    #[test]
    fn det2_sign_on_tiny_perturbations() {
        // Determinant of nearly-singular matrix decided exactly.
        let eps = f64::EPSILON;
        // | 1+e  1 ; 1  1 | = e  > 0
        let d = det2_exact(
            two_diff(1.0 + eps, 0.0),
            two_diff(1.0, 0.0),
            two_diff(1.0, 0.0),
            two_diff(1.0, 0.0),
        );
        assert_eq!(d.sign(), 1);
        // exactly singular
        let d0 = det2_exact(
            two_diff(2.0, 0.0),
            two_diff(4.0, 0.0),
            two_diff(3.0, 0.0),
            two_diff(6.0, 0.0),
        );
        assert_eq!(d0.sign(), 0);
    }

    #[test]
    fn zero_handling() {
        let z = Expansion::zero();
        assert_eq!(z.sign(), 0);
        assert_eq!(z.add(&z).sign(), 0);
        assert_eq!(z.mul(&Expansion::from_f64(5.0)).sign(), 0);
        assert_eq!(Expansion::from_f64(0.0).len(), 0);
    }
}
