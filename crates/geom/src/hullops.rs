//! Point-hull-invariant primitives (paper §2.4).
//!
//! The paper's Lemma 2.6 runs a point algorithm on *upper hulls* by
//! replacing the three point/line primitives with their hull analogues
//! (Atallah & Goodrich, "Parallel Algorithms for Some Functions of Two
//! Convex Polygons", Algorithmica 1988):
//!
//! | on points/lines                      | on upper hulls                       |
//! |--------------------------------------|--------------------------------------|
//! | coordinates / side-of-line of a point| line ∩ upper hull ([`hull_above_line`], [`vertices_above_line`]) |
//! | line defined by two points           | common tangent ([`common_upper_tangent`]) |
//! | intersection of two lines            | intersection of two hulls (one crossing assumed) |
//!
//! Every query here exploits the strict convexity of the chain: the dot
//! product of vertices with a fixed direction is strictly unimodal along
//! the chain, so all searches are O(log q) sequentially. Atallah–Goodrich
//! evaluate the same searches in O(b) parallel time with O(q^{1/b})
//! processors by q^{1/b}-ary branching; call sites on the PRAM charge that
//! cost (see `ipch-hull2d`'s `invariant` module) while delegating the data
//! work to these routines.

use crate::hull_chain::UpperHull;
use crate::point::Point2;
use crate::predicates::orient2d_sign;

/// Index (into `hull.vertices`) of the vertex maximizing `dir · v`.
///
/// Requires a non-empty hull. For a strictly convex upper chain and any
/// direction with `dir.y > 0`, or `dir.y == 0`, the sequence of dot
/// products is strictly unimodal, enabling binary search. Directions with
/// `dir.y < 0` are rejected (they point below the chain).
pub fn extreme_vertex(pts: &[Point2], hull: &UpperHull, dir: (f64, f64)) -> usize {
    assert!(!hull.is_empty(), "extreme_vertex on empty hull");
    assert!(
        dir.1 >= 0.0,
        "direction must have non-negative y for an upper chain"
    );
    let dot = |i: usize| {
        let p = pts[hull.vertices[i]];
        dir.0 * p.x + dir.1 * p.y
    };
    let n = hull.vertices.len();
    // binary search for the peak of the unimodal sequence
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if dot(mid) < dot(mid + 1) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Does any hull vertex lie strictly above the line through `a → b`
/// (`a.x < b.x`)? Equivalent to "line ∩ hull ≠ at-most-touching" for the
/// upper region. O(log q) via [`extreme_vertex`] in the line's upward
/// normal direction.
pub fn hull_above_line(pts: &[Point2], hull: &UpperHull, a: Point2, b: Point2) -> bool {
    if hull.is_empty() {
        return false;
    }
    debug_assert!(a.x < b.x);
    // upward normal of the line a→b
    let n = (-(b.y - a.y), b.x - a.x);
    let i = extreme_vertex(pts, hull, n);
    orient2d_sign(a, b, pts[hull.vertices[i]]) > 0
}

/// The contiguous range of hull-vertex positions strictly above line `a→b`,
/// as `lo..hi` into `hull.vertices` (empty range if none). The above-set of
/// a convex chain against a line is always contiguous.
pub fn vertices_above_line(
    pts: &[Point2],
    hull: &UpperHull,
    a: Point2,
    b: Point2,
) -> std::ops::Range<usize> {
    let n = hull.vertices.len();
    let above = |i: usize| orient2d_sign(a, b, pts[hull.vertices[i]]) > 0;
    if n == 0 {
        return 0..0;
    }
    // peak of signed distance = extreme vertex along upward normal
    let normal = (-(b.y - a.y), b.x - a.x);
    let peak = extreme_vertex(pts, hull, normal);
    if !above(peak) {
        return 0..0;
    }
    // left boundary: first above-vertex in 0..=peak (above is a suffix there)
    let (mut lo, mut hi) = (0usize, peak);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if above(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let left = lo;
    // right boundary: last above-vertex in peak..n (above is a prefix there)
    let (mut lo2, mut hi2) = (peak, n - 1);
    while lo2 < hi2 {
        let mid = (lo2 + hi2).div_ceil(2);
        if above(mid) {
            lo2 = mid;
        } else {
            hi2 = mid - 1;
        }
    }
    left..lo2 + 1
}

/// Upper tangent from an external point `q` to `hull`: the position `t`
/// (into `hull.vertices`) such that every hull vertex lies on or below the
/// line through `q` and vertex `t`. Requires `q.x` strictly outside the
/// hull's x-span (the configuration that arises between x-disjoint groups).
/// O(log q) binary search on the tangency predicate.
pub fn tangent_from_point(pts: &[Point2], hull: &UpperHull, q: Point2) -> usize {
    assert!(!hull.is_empty());
    let n = hull.vertices.len();
    if n == 1 {
        return 0;
    }
    let v = |i: usize| pts[hull.vertices[i]];
    let left_of_hull = q.x < v(0).x;
    debug_assert!(
        left_of_hull || q.x > v(n - 1).x,
        "tangent_from_point requires q outside the hull x-span"
    );
    // Tangency test at i: both neighbours on-or-below line(q, v(i)).
    // For q left of the hull, walking right along the chain the slope of
    // q→v(i) first increases then decreases... equivalently the predicate
    // "v(i+1) is on-or-below line(q, v(i))" is monotone in i: false, …,
    // false, true, …, true. Binary search the first true.
    if left_of_hull {
        let pred = |i: usize| -> bool {
            // successor not strictly above line q→v(i)
            i + 1 >= n || orient2d_sign(q, v(i), v(i + 1)) <= 0
        };
        let (mut lo, mut hi) = (0usize, n - 1);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if pred(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    } else {
        // mirror: q right of hull; predicate on predecessor, searching from
        // the right: "v(i-1) on-or-below line(v(i), q)" is monotone
        // (true, …, true, false, …, false) going left→right reversed.
        let pred = |i: usize| -> bool { i == 0 || orient2d_sign(v(i), q, v(i - 1)) <= 0 };
        let (mut lo, mut hi) = (0usize, n - 1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if pred(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

/// Common upper tangent of two x-disjoint upper hulls (every `a`-vertex x
/// strictly less than every `b`-vertex x). Returns positions `(ia, ib)`
/// into the respective vertex lists such that all vertices of both hulls
/// lie on or below the line through `a[ia] → b[ib]`. Collinear touching
/// vertices resolve to the outermost pair.
///
/// Two-pointer walk, O(|a| + |b|); the classic O(log) nested search exists
/// but the walk is the verification-grade reference (call sites charge the
/// Atallah–Goodrich parallel cost, see module docs).
pub fn common_upper_tangent(
    pts_a: &[Point2],
    a: &UpperHull,
    pts_b: &[Point2],
    b: &UpperHull,
) -> (usize, usize) {
    assert!(!a.is_empty() && !b.is_empty());
    let va = |i: usize| pts_a[a.vertices[i]];
    let vb = |i: usize| pts_b[b.vertices[i]];
    debug_assert!(
        va(a.vertices.len() - 1).x < vb(0).x,
        "hulls must be x-disjoint (a left of b)"
    );
    let (mut ia, mut ib) = (a.vertices.len() - 1, 0usize);
    loop {
        let mut moved = false;
        // raise the right endpoint while its successor is on-or-above
        while ib + 1 < b.vertices.len() && orient2d_sign(va(ia), vb(ib), vb(ib + 1)) >= 0 {
            ib += 1;
            moved = true;
        }
        // lower the left endpoint while its predecessor is on-or-above
        while ia > 0 && orient2d_sign(va(ia), vb(ib), va(ia - 1)) >= 0 {
            ia -= 1;
            moved = true;
        }
        if !moved {
            return (ia, ib);
        }
    }
}

/// Common upper tangent by nested binary search: O(log|a| · log|b|)
/// orientation tests (the sequential counterpart of the Atallah–Goodrich
/// q^{1/b}-ary parallel search this crate's callers charge). Same
/// contract as [`common_upper_tangent`]; both are validated against the
/// brute reference, and against each other, in the tests.
///
/// Search: for each candidate contact `i` on hull `a`, the tangent from
/// point `a[i]` to hull `b` is found in O(log|b|); `i` is the true contact
/// iff its neighbours on `a` fall on or below that line. The predicate
/// "the true contact lies right of i" (neighbour `i+1` strictly above) is
/// monotone along the chain, so `i` binary-searches in O(log|a|).
pub fn common_upper_tangent_fast(
    pts_a: &[Point2],
    a: &UpperHull,
    pts_b: &[Point2],
    b: &UpperHull,
) -> (usize, usize) {
    assert!(!a.is_empty() && !b.is_empty());
    let va = |i: usize| pts_a[a.vertices[i]];
    let vb = |j: usize| pts_b[b.vertices[j]];
    debug_assert!(va(a.vertices.len() - 1).x < vb(0).x);
    let n = a.vertices.len();

    // contact on b for a given left endpoint (a is entirely left of b)
    let contact_b = |i: usize| tangent_from_point(pts_b, b, va(i));

    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let j = contact_b(mid);
        // does the chain continue above the candidate tangent to the right?
        if mid + 1 < n && orient2d_sign(va(mid), vb(j), va(mid + 1)) > 0 {
            lo = mid + 1;
        } else if mid > 0 && orient2d_sign(va(mid), vb(j), va(mid - 1)) > 0 {
            hi = mid - 1;
        } else {
            // candidate supports hull a; finish like the walk so collinear
            // contacts resolve to the same outermost pair
            let mut ia = mid;
            let mut ib = contact_b(ia);
            loop {
                let mut moved = false;
                while ib + 1 < b.vertices.len() && orient2d_sign(va(ia), vb(ib), vb(ib + 1)) >= 0 {
                    ib += 1;
                    moved = true;
                }
                while ia > 0 && orient2d_sign(va(ia), vb(ib), va(ia - 1)) >= 0 {
                    ia -= 1;
                    moved = true;
                }
                if !moved {
                    return (ia, ib);
                }
            }
        }
    }
    let ia = lo;
    let mut ib = contact_b(ia);
    // outermost-collinear cleanup (identical to the walk's convention)
    loop {
        let mut moved = false;
        while ib + 1 < b.vertices.len() && orient2d_sign(va(ia), vb(ib), vb(ib + 1)) >= 0 {
            ib += 1;
            moved = true;
        }
        if !moved {
            break;
        }
    }
    let mut ia = ia;
    loop {
        let mut moved = false;
        while ia > 0 && orient2d_sign(va(ia), vb(ib), va(ia - 1)) >= 0 {
            ia -= 1;
            moved = true;
        }
        if !moved {
            break;
        }
    }
    (ia, ib)
}

/// Brute-force O(|a|·|b|·(|a|+|b|)) common-tangent reference for tests.
pub fn common_upper_tangent_naive(
    pts_a: &[Point2],
    a: &UpperHull,
    pts_b: &[Point2],
    b: &UpperHull,
) -> (usize, usize) {
    let va: Vec<Point2> = a.vertices.iter().map(|&i| pts_a[i]).collect();
    let vb: Vec<Point2> = b.vertices.iter().map(|&i| pts_b[i]).collect();
    let mut best: Option<(usize, usize)> = None;
    for (i, &p) in va.iter().enumerate() {
        for (j, &q) in vb.iter().enumerate() {
            let all_below = va
                .iter()
                .chain(vb.iter())
                .all(|&r| orient2d_sign(p, q, r) <= 0);
            if all_below {
                // outermost pair: smallest i, largest j
                best = match best {
                    None => Some((i, j)),
                    Some((bi, bj)) => {
                        if i < bi || (i == bi && j > bj) {
                            Some((i, j))
                        } else {
                            Some((bi, bj))
                        }
                    }
                };
            }
        }
    }
    best.expect("x-disjoint hulls always have a common upper tangent")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn hull(pts: &[Point2]) -> UpperHull {
        UpperHull::of(pts)
    }

    fn arc(cx: f64, n: usize) -> Vec<Point2> {
        // n points on an upper semicircle centred at (cx, 0), radius 1
        (0..n)
            .map(|i| {
                let t = std::f64::consts::PI * (0.1 + 0.8 * i as f64 / (n - 1) as f64);
                p(cx - t.cos(), t.sin())
            })
            .collect()
    }

    #[test]
    fn extreme_vertex_up_is_apex() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 2.0),
            p(2.0, 3.0),
            p(3.0, 2.5),
            p(4.0, 0.0),
        ];
        let h = hull(&pts);
        let i = extreme_vertex(&pts, &h, (0.0, 1.0));
        assert_eq!(h.vertices[i], 2);
        // leftmost / rightmost via horizontal directions
        let l = extreme_vertex(&pts, &h, (-1.0, 0.0));
        assert_eq!(h.vertices[l], 0);
        let r = extreme_vertex(&pts, &h, (1.0, 0.0));
        assert_eq!(h.vertices[r], 4);
    }

    #[test]
    fn extreme_vertex_matches_linear_scan() {
        let pts = arc(0.0, 40);
        let h = hull(&pts);
        for k in 0..20 {
            let th = std::f64::consts::PI * (k as f64 + 0.5) / 20.0;
            let dir = (th.cos(), th.sin());
            let i = extreme_vertex(&pts, &h, dir);
            let best = (0..h.vertices.len())
                .max_by(|&x, &y| {
                    let dx = dir.0 * pts[h.vertices[x]].x + dir.1 * pts[h.vertices[x]].y;
                    let dy = dir.0 * pts[h.vertices[y]].x + dir.1 * pts[h.vertices[y]].y;
                    dx.partial_cmp(&dy).unwrap()
                })
                .unwrap();
            assert_eq!(i, best, "dir {dir:?}");
        }
    }

    #[test]
    fn hull_above_line_cases() {
        let pts = arc(0.0, 12);
        let h = hull(&pts);
        assert!(hull_above_line(&pts, &h, p(-2.0, 0.5), p(2.0, 0.5)));
        assert!(!hull_above_line(&pts, &h, p(-2.0, 1.5), p(2.0, 1.5)));
        // touching at apex only: not strictly above
        assert!(!hull_above_line(&pts, &h, p(-2.0, 2.0), p(2.0, 2.0)));
    }

    #[test]
    fn vertices_above_line_is_contiguous_and_correct() {
        let pts = arc(0.0, 25);
        let h = hull(&pts);
        for yc in [0.2, 0.5, 0.9, 0.99, 1.01] {
            let (a, b) = (p(-3.0, yc), p(3.0, yc));
            let r = vertices_above_line(&pts, &h, a, b);
            for i in 0..h.vertices.len() {
                let above = orient2d_sign(a, b, pts[h.vertices[i]]) > 0;
                assert_eq!(r.contains(&i), above, "yc={yc} i={i}");
            }
        }
    }

    #[test]
    fn tangent_from_point_both_sides() {
        let pts = arc(0.0, 30);
        let h = hull(&pts);
        for q in [
            p(-5.0, 0.0),
            p(-3.0, 1.2),
            p(5.0, 0.0),
            p(4.0, 1.5),
            p(-2.5, -1.0),
        ] {
            let t = tangent_from_point(&pts, &h, q);
            let tv = pts[h.vertices[t]];
            for i in 0..h.vertices.len() {
                let w = pts[h.vertices[i]];
                let s = if q.x < tv.x {
                    orient2d_sign(q, tv, w)
                } else {
                    orient2d_sign(tv, q, w)
                };
                assert!(s <= 0, "q={q:?} vertex {i} above tangent");
            }
        }
    }

    #[test]
    fn tangent_from_point_tiny_hulls() {
        let pts = vec![p(0.0, 0.0)];
        let h = hull(&pts);
        assert_eq!(tangent_from_point(&pts, &h, p(-1.0, 0.0)), 0);
        let pts2 = vec![p(0.0, 0.0), p(1.0, 1.0)];
        let h2 = hull(&pts2);
        // from high on the left the tangent line slopes steeply down, so it
        // touches the far (right) vertex; from low on the left, the near one
        let t = tangent_from_point(&pts2, &h2, p(-1.0, 5.0));
        assert_eq!(h2.vertices[t], 1);
        let t2 = tangent_from_point(&pts2, &h2, p(-1.0, -5.0));
        assert_eq!(h2.vertices[t2], 0);
    }

    #[test]
    fn common_tangent_matches_naive_on_arcs() {
        for (na, nb) in [(3usize, 3usize), (5, 9), (12, 4), (20, 20), (1, 7), (6, 1)] {
            let pa = arc(0.0, na.max(2));
            let pb = arc(5.0, nb.max(2));
            let (pa, pb): (Vec<_>, Vec<_>) = if na == 1 {
                (vec![p(0.0, 0.3)], pb)
            } else if nb == 1 {
                (pa, vec![p(5.0, 0.3)])
            } else {
                (pa, pb)
            };
            let (ha, hb) = (hull(&pa), hull(&pb));
            let fast = common_upper_tangent(&pa, &ha, &pb, &hb);
            let naive = common_upper_tangent_naive(&pa, &ha, &pb, &hb);
            assert_eq!(fast, naive, "na={na} nb={nb}");
        }
    }

    #[test]
    fn fast_tangent_matches_walk() {
        // random irregular hull pairs across a size grid
        let mut s = 0xfeedu64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for (na, nb) in [(2usize, 2usize), (3, 9), (17, 5), (40, 40), (100, 7)] {
            for trial in 0..6 {
                let pa: Vec<Point2> = (0..na)
                    .map(|i| p(i as f64 + next() * 0.5, next() * 3.0))
                    .collect();
                let pb: Vec<Point2> = (0..nb)
                    .map(|i| p(200.0 + i as f64 + next() * 0.5, next() * 3.0))
                    .collect();
                let (ha, hb) = (hull(&pa), hull(&pb));
                let walk = common_upper_tangent(&pa, &ha, &pb, &hb);
                let fast = common_upper_tangent_fast(&pa, &ha, &pb, &hb);
                assert_eq!(fast, walk, "na={na} nb={nb} trial={trial}");
            }
        }
    }

    #[test]
    fn fast_tangent_on_arcs_and_collinear() {
        let pa = arc(0.0, 30);
        let pb = arc(5.0, 17);
        let (ha, hb) = (hull(&pa), hull(&pb));
        assert_eq!(
            common_upper_tangent_fast(&pa, &ha, &pb, &hb),
            common_upper_tangent(&pa, &ha, &pb, &hb)
        );
        let ca = vec![p(0.0, 0.0), p(1.0, 1.0)];
        let cb = vec![p(2.0, 2.0), p(3.0, 3.0)];
        let (ha, hb) = (hull(&ca), hull(&cb));
        assert_eq!(
            common_upper_tangent_fast(&ca, &ha, &cb, &hb),
            common_upper_tangent(&ca, &ha, &cb, &hb)
        );
    }

    #[test]
    fn common_tangent_collinear_prefers_outermost() {
        // two segments on the same line y = x
        let pa = vec![p(0.0, 0.0), p(1.0, 1.0)];
        let pb = vec![p(2.0, 2.0), p(3.0, 3.0)];
        let (ha, hb) = (hull(&pa), hull(&pb));
        let (ia, ib) = common_upper_tangent(&pa, &ha, &pb, &hb);
        assert_eq!((ha.vertices[ia], hb.vertices[ib]), (0, 1));
    }

    #[test]
    fn common_tangent_is_above_everything() {
        // irregular hulls
        let pa = vec![
            p(0.0, 0.0),
            p(0.5, 1.4),
            p(1.0, 1.8),
            p(1.5, 1.2),
            p(2.0, 0.1),
        ];
        let pb = vec![p(4.0, -0.5), p(4.5, 0.9), p(5.0, 1.1), p(5.5, 0.3)];
        let (ha, hb) = (hull(&pa), hull(&pb));
        let (ia, ib) = common_upper_tangent(&pa, &ha, &pb, &hb);
        let (u, v) = (pa[ha.vertices[ia]], pb[hb.vertices[ib]]);
        for &w in pa.iter().chain(pb.iter()) {
            assert!(orient2d_sign(u, v, w) <= 0, "{w:?} above tangent");
        }
    }
}
