//! 3-D workload generators (for the Theorem 6 experiments).
//!
//! Same design as [`crate::generators`]: seeded, deterministic, with the
//! hull size controllable via [`sphere_plus_interior`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::point::Point3;

fn unit_sphere_point(rng: &mut StdRng) -> Point3 {
    // Marsaglia: uniform on S²
    loop {
        let u = rng.random::<f64>() * 2.0 - 1.0;
        let v = rng.random::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s < 1.0 {
            let f = 2.0 * (1.0 - s).sqrt();
            return Point3::new(u * f, v * f, 1.0 - 2.0 * s);
        }
    }
}

/// `n` points uniform in the unit ball. E[hull size] = Θ(n^{1/2}) facets.
pub fn in_ball(n: usize, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let x = rng.random::<f64>() * 2.0 - 1.0;
        let y = rng.random::<f64>() * 2.0 - 1.0;
        let z = rng.random::<f64>() * 2.0 - 1.0;
        if x * x + y * y + z * z <= 1.0 {
            out.push(Point3::new(x, y, z));
        }
    }
    out
}

/// `n` points uniform in the unit cube. E[hull vertices] = Θ(log² n).
pub fn in_cube(n: usize, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point3::new(
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
            )
        })
        .collect()
}

/// `n` points on the unit sphere: every point is a hull vertex (h = n).
pub fn on_sphere(n: usize, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| unit_sphere_point(&mut rng)).collect()
}

/// Exactly `h` hull vertices: `h` points on the unit sphere plus `n - h`
/// points in the ball of radius `r_inner` — strictly inside the hull of the
/// sphere points as long as the sphere sample is not too sparse.
///
/// `r_inner` defaults conservatively: for `h ≥ 20` random sphere points the
/// circumradius of the largest empty cap shrinks like (log h / h)^{1/2};
/// radius 0.5 keeps interior points inside with overwhelming margin for the
/// `h` used in experiments, and the function *verifies* vertex count in
/// debug builds via the caller's oracle if desired.
pub fn sphere_plus_interior(h: usize, n: usize, seed: u64) -> Vec<Point3> {
    assert!((4..=n).contains(&h), "need 4 <= h <= n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Point3> = (0..h).map(|_| unit_sphere_point(&mut rng)).collect();
    let r_inner = 0.5;
    while out.len() < n {
        let x = rng.random::<f64>() * 2.0 - 1.0;
        let y = rng.random::<f64>() * 2.0 - 1.0;
        let z = rng.random::<f64>() * 2.0 - 1.0;
        if x * x + y * y + z * z <= r_inner * r_inner {
            out.push(Point3::new(x, y, z));
        }
    }
    for i in (1..out.len()).rev() {
        let j = rng.random_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// `n` coplanar points (z = αx + βy + γ): degenerate torture input for the
/// 3-D predicates.
///
/// `x`/`y` are snapped to a dyadic grid (multiples of 2⁻¹⁰), so with dyadic
/// coefficients the plane equation evaluates exactly in f64 and the points
/// are *exactly* coplanar.
pub fn coplanar(n: usize, coeffs: (f64, f64, f64), seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.random_range(-2 * 1024..2 * 1024) as f64 / 1024.0;
            let y = rng.random_range(-2 * 1024..2 * 1024) as f64 / 1024.0;
            Point3::new(x, y, coeffs.0 * x + coeffs.1 * y + coeffs.2)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(in_ball(20, 1), in_ball(20, 1));
        assert_eq!(on_sphere(20, 1), on_sphere(20, 1));
    }

    #[test]
    fn ball_and_sphere_radii() {
        for p in in_ball(300, 2) {
            assert!(p.x * p.x + p.y * p.y + p.z * p.z <= 1.0 + 1e-12);
        }
        for p in on_sphere(300, 2) {
            assert!((p.x * p.x + p.y * p.y + p.z * p.z - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sphere_plus_interior_counts() {
        let pts = sphere_plus_interior(30, 200, 3);
        assert_eq!(pts.len(), 200);
        let on_sphere_count = pts
            .iter()
            .filter(|p| (p.x * p.x + p.y * p.y + p.z * p.z - 1.0).abs() < 1e-9)
            .count();
        assert_eq!(on_sphere_count, 30);
        // all others strictly inside radius 0.5
        for p in &pts {
            let r2 = p.x * p.x + p.y * p.y + p.z * p.z;
            assert!(r2 <= 0.25 + 1e-12 || (r2 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn coplanar_is_coplanar() {
        let pts = coplanar(50, (1.0, -2.0, 0.5), 4);
        use crate::predicates::orient3d_sign;
        let (a, b, c) = (pts[0], pts[1], pts[2]);
        for &d in &pts[3..] {
            assert_eq!(orient3d_sign(a, b, c, d), 0);
        }
    }
}
