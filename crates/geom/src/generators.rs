//! 2-D workload generators with controlled hull size `h`.
//!
//! Output-sensitivity experiments (tables T3/T4) need the output size `h`
//! as an independent knob; classical distributions pin the *expected* hull
//! size instead:
//!
//! | generator | E\[h\] |
//! |---|---|
//! | [`uniform_square`] | Θ(log n) |
//! | [`uniform_disk`] | Θ(n^{1/3}) |
//! | [`on_circle`] | n (every point extreme) |
//! | [`gaussian`] | Θ(√log n) |
//! | [`circle_plus_interior`] | exactly `h` (h regular-polygon vertices + interior fill) |
//!
//! All generators are seeded and deterministic. Torture inputs
//! ([`collinear_on_line`], [`duplicated`], [`grid`]) exercise the exact
//! predicate paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::point::Point2;

/// `n` points uniform in the unit square.
pub fn uniform_square(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point2::new(rng.random::<f64>(), rng.random::<f64>()))
        .collect()
}

/// `n` points uniform in the unit disk (rejection sampling).
pub fn uniform_disk(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let x = rng.random::<f64>() * 2.0 - 1.0;
        let y = rng.random::<f64>() * 2.0 - 1.0;
        if x * x + y * y <= 1.0 {
            out.push(Point2::new(x, y));
        }
    }
    out
}

/// `n` points exactly on the unit circle at uniformly random angles: every
/// point is a hull vertex, so `h = n` (up to vanishing-probability angle
/// collisions) — the adversarial case for output-sensitive methods.
pub fn on_circle(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let t = rng.random::<f64>() * std::f64::consts::TAU;
            Point2::new(t.cos(), t.sin())
        })
        .collect()
}

/// `n` points from a standard 2-D Gaussian (Box–Muller).
pub fn gaussian(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random::<f64>();
            let r = (-2.0 * u1.ln()).sqrt();
            let t = std::f64::consts::TAU * u2;
            Point2::new(r * t.cos(), r * t.sin())
        })
        .collect()
}

/// Exactly `h` hull vertices: the vertices of a regular `h`-gon on the unit
/// circle (slightly rotated so no two share an x-coordinate), plus `n - h`
/// points strictly inside the polygon's inscribed circle.
///
/// Requires `3 ≤ h ≤ n`. The *convex* hull has exactly `h` vertices; the
/// *upper* hull has `⌈h/2⌉ ± 1` (see [`upper_hull_size_of`] for the exact
/// count on a given instance).
pub fn circle_plus_interior(h: usize, n: usize, seed: u64) -> Vec<Point2> {
    assert!((3..=n).contains(&h), "need 3 <= h <= n");
    let mut rng = StdRng::seed_from_u64(seed);
    let rot = 0.123; // avoid symmetric x-ties
    let mut out: Vec<Point2> = (0..h)
        .map(|i| {
            let t = rot + std::f64::consts::TAU * i as f64 / h as f64;
            Point2::new(t.cos(), t.sin())
        })
        .collect();
    // inscribed-circle radius of the regular h-gon
    let r_in = (std::f64::consts::PI / h as f64).cos();
    while out.len() < n {
        let x = rng.random::<f64>() * 2.0 - 1.0;
        let y = rng.random::<f64>() * 2.0 - 1.0;
        if x * x + y * y < (0.95 * r_in) * (0.95 * r_in) {
            out.push(Point2::new(x, y));
        }
    }
    // interior points are appended after hull points; shuffle so position
    // carries no information (the algorithms must not exploit layout)
    for i in (1..out.len()).rev() {
        let j = rng.random_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// `n` points on the line `y = slope·x + c` — fully degenerate input whose
/// upper hull is the two extreme points.
///
/// Abscissas are snapped to a dyadic grid (multiples of 2⁻¹⁰) so that with
/// dyadic `slope` and `c` the line equation evaluates *exactly* in f64 and
/// the points are genuinely collinear, exercising the exact-predicate path.
pub fn collinear_on_line(n: usize, slope: f64, c: f64, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.random_range(0..10 * 1024) as f64 / 1024.0;
            Point2::new(x, slope * x + c)
        })
        .collect()
}

/// `base` repeated until there are `n` points — duplicate-heavy torture
/// input.
pub fn duplicated(base: &[Point2], n: usize) -> Vec<Point2> {
    assert!(!base.is_empty());
    (0..n).map(|i| base[i % base.len()]).collect()
}

/// ⌈√n⌉ × ⌈√n⌉ integer grid, truncated to `n` points — many collinearities
/// and x-ties.
pub fn grid(n: usize) -> Vec<Point2> {
    let side = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| Point2::new((i % side) as f64, (i / side) as f64))
        .collect()
}

/// The number of *upper hull* edges of `pts` per the oracle — used by
/// experiments to report the realised `h` of an instance.
pub fn upper_hull_size_of(pts: &[Point2]) -> usize {
    crate::hull_chain::upper_hull_indices(pts)
        .len()
        .saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull_chain::{verify_upper_hull, UpperHull};

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_square(50, 7), uniform_square(50, 7));
        assert_ne!(uniform_square(50, 7), uniform_square(50, 8));
        assert_eq!(
            circle_plus_interior(5, 40, 3),
            circle_plus_interior(5, 40, 3)
        );
    }

    #[test]
    fn disk_points_in_disk() {
        for p in uniform_disk(200, 1) {
            assert!(p.x * p.x + p.y * p.y <= 1.0);
        }
    }

    #[test]
    fn circle_points_on_circle() {
        for p in on_circle(100, 2) {
            assert!((p.x * p.x + p.y * p.y - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn circle_plus_interior_has_exact_hull_size() {
        for (h, n) in [(3usize, 10usize), (8, 100), (17, 500), (64, 64)] {
            let pts = circle_plus_interior(h, n, 42);
            assert_eq!(pts.len(), n);
            let hull = crate::hull_chain::convex_hull_indices(&pts);
            assert_eq!(hull.len(), h, "h={h} n={n}");
        }
    }

    #[test]
    fn circle_plus_interior_upper_hull_about_half() {
        let pts = circle_plus_interior(40, 400, 9);
        let uh = upper_hull_size_of(&pts);
        assert!((15..=25).contains(&uh), "upper hull edges = {uh}");
    }

    #[test]
    fn hull_size_expectations_by_distribution() {
        let n = 4000;
        let sq = upper_hull_size_of(&uniform_square(n, 5));
        let dk = upper_hull_size_of(&uniform_disk(n, 5));
        let ci = upper_hull_size_of(&on_circle(n, 5));
        assert!(
            sq < dk,
            "square E[h]=O(log n) < disk E[h]=O(n^1/3): {sq} vs {dk}"
        );
        assert!(dk < ci, "disk < circle: {dk} vs {ci}");
        assert!(ci >= n / 3, "on-circle upper hull ~ n/2, got {ci}");
        assert!(sq <= 40, "square hull unexpectedly large: {sq}");
    }

    #[test]
    fn torture_inputs_have_valid_hulls() {
        let col = collinear_on_line(100, 2.0, 1.0, 3);
        let h = UpperHull::of(&col);
        verify_upper_hull(&col, &h).unwrap();
        assert_eq!(h.num_edges(), 1);

        let dup = duplicated(&[Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)], 33);
        let h2 = UpperHull::of(&dup);
        verify_upper_hull(&dup, &h2).unwrap();

        let g = grid(37);
        let h3 = UpperHull::of(&g);
        verify_upper_hull(&g, &h3).unwrap();
    }
}
