//! Robust orientation predicates: f64 filter + exact expansion fallback.
//!
//! `orient2d(a, b, c)` returns the orientation of the triangle `a → b → c`:
//! counter-clockwise (c left of the directed line a→b), clockwise, or
//! collinear. `orient3d(a, b, c, d)` returns the side of the oriented plane
//! `a, b, c` that `d` lies on (`Above` ⇔ determinant positive ⇔ `d` sees
//! `a, b, c` in counter-clockwise order... we fix the convention below).
//!
//! Both first evaluate the determinant in plain f64 with Shewchuk's static
//! error bound; only when `|det|` falls below the bound do they re-evaluate
//! exactly with [`crate::exact`] expansions. On random inputs the fallback
//! triggers essentially never; on the collinear/degenerate torture inputs
//! in the test suites it triggers constantly and must still be exact.

use crate::exact::{det2_exact, two_diff, Expansion};
use crate::point::{Point2, Point3};

/// Result of an orientation test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Positive determinant: `c` is to the left of a→b (counter-clockwise).
    CounterClockwise,
    /// Negative determinant: `c` is to the right of a→b (clockwise).
    Clockwise,
    /// Zero determinant: collinear / coplanar.
    Collinear,
}

impl Orientation {
    /// Map a sign to an orientation.
    #[inline]
    pub fn from_sign(s: i32) -> Self {
        match s.cmp(&0) {
            std::cmp::Ordering::Greater => Orientation::CounterClockwise,
            std::cmp::Ordering::Less => Orientation::Clockwise,
            std::cmp::Ordering::Equal => Orientation::Collinear,
        }
    }
}

/// Shewchuk's `ccwerrboundA` for the 2-D filter.
const CCW_ERRBOUND_A: f64 = (3.0 + 16.0 * f64::EPSILON / 2.0) * (f64::EPSILON / 2.0);
/// Shewchuk's `o3derrboundA` for the 3-D filter.
const O3D_ERRBOUND_A: f64 = (7.0 + 56.0 * f64::EPSILON / 2.0) * (f64::EPSILON / 2.0);

/// Sign of `det[(a-c) (b-c)]`: +1 if `a, b, c` make a left turn.
pub fn orient2d_sign(a: Point2, b: Point2, c: Point2) -> i32 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return sign_of(det);
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return sign_of(det);
        }
        -detleft - detright
    } else {
        return sign_of(det);
    };

    let errbound = CCW_ERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return sign_of(det);
    }
    orient2d_exact(a, b, c)
}

/// Exact 2-D orientation via expansions (no filter).
pub fn orient2d_exact(a: Point2, b: Point2, c: Point2) -> i32 {
    det2_exact(
        two_diff(a.x, c.x),
        two_diff(b.x, c.x),
        two_diff(a.y, c.y),
        two_diff(b.y, c.y),
    )
    .sign()
}

/// Robust 2-D orientation test.
#[inline]
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> Orientation {
    Orientation::from_sign(orient2d_sign(a, b, c))
}

/// Sign of the 3×3 determinant of rows `(a-d, b-d, c-d)`.
///
/// Positive ⇔ `d` lies *below* the oriented plane through `a, b, c` when
/// `a, b, c` appear counter-clockwise seen from above (the standard
/// `orient3d` convention).
pub fn orient3d_sign(a: Point3, b: Point3, c: Point3, d: Point3) -> i32 {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;
    let adz = a.z - d.z;
    let bdz = b.z - d.z;
    let cdz = c.z - d.z;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;

    let det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) + cdz * (adxbdy - bdxady);
    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * adz.abs()
        + (cdxady.abs() + adxcdy.abs()) * bdz.abs()
        + (adxbdy.abs() + bdxady.abs()) * cdz.abs();
    let errbound = O3D_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return sign_of(det);
    }
    orient3d_exact(a, b, c, d)
}

/// Exact 3-D orientation via expansions (no filter).
pub fn orient3d_exact(a: Point3, b: Point3, c: Point3, d: Point3) -> i32 {
    let adx = Expansion::from_two(two_diff(a.x, d.x).0, two_diff(a.x, d.x).1);
    let bdx = Expansion::from_two(two_diff(b.x, d.x).0, two_diff(b.x, d.x).1);
    let cdx = Expansion::from_two(two_diff(c.x, d.x).0, two_diff(c.x, d.x).1);
    let ady = Expansion::from_two(two_diff(a.y, d.y).0, two_diff(a.y, d.y).1);
    let bdy = Expansion::from_two(two_diff(b.y, d.y).0, two_diff(b.y, d.y).1);
    let cdy = Expansion::from_two(two_diff(c.y, d.y).0, two_diff(c.y, d.y).1);
    let adz = Expansion::from_two(two_diff(a.z, d.z).0, two_diff(a.z, d.z).1);
    let bdz = Expansion::from_two(two_diff(b.z, d.z).0, two_diff(b.z, d.z).1);
    let cdz = Expansion::from_two(two_diff(c.z, d.z).0, two_diff(c.z, d.z).1);

    let m1 = bdx.mul(&cdy).sub(&cdx.mul(&bdy));
    let m2 = cdx.mul(&ady).sub(&adx.mul(&cdy));
    let m3 = adx.mul(&bdy).sub(&bdx.mul(&ady));
    adz.mul(&m1).add(&bdz.mul(&m2)).add(&cdz.mul(&m3)).sign()
}

/// Robust 3-D orientation test.
#[inline]
pub fn orient3d(a: Point3, b: Point3, c: Point3, d: Point3) -> Orientation {
    Orientation::from_sign(orient3d_sign(a, b, c, d))
}

#[inline]
fn sign_of(v: f64) -> i32 {
    if v > 0.0 {
        1
    } else if v < 0.0 {
        -1
    } else {
        0
    }
}

/// True if point `c` is strictly above the line through `a` and `b`
/// (`a.x != b.x` assumed by the caller; "above" is +y).
///
/// For an upper hull with vertices left-to-right, interior points are
/// strictly *below* every hull edge's supporting line, i.e.
/// `orient2d(a, b, p) == Clockwise` when `a.x < b.x`.
#[inline]
pub fn strictly_above(a: Point2, b: Point2, c: Point2) -> bool {
    debug_assert!(a.x <= b.x);
    orient2d_sign(a, b, c) > 0
}

/// True if `c` is on or below the line through `a → b` (left-to-right).
#[inline]
pub fn on_or_below(a: Point2, b: Point2, c: Point2) -> bool {
    debug_assert!(a.x <= b.x);
    orient2d_sign(a, b, c) <= 0
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Point2 = Point2::new(0.0, 0.0);
    const B: Point2 = Point2::new(1.0, 0.0);

    #[test]
    fn orient2d_basic() {
        assert_eq!(
            orient2d(A, B, Point2::new(0.5, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(A, B, Point2::new(0.5, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orient2d(A, B, Point2::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orient2d_antisymmetry() {
        let c = Point2::new(0.3, 0.7);
        assert_eq!(orient2d_sign(A, B, c), -orient2d_sign(B, A, c));
        assert_eq!(orient2d_sign(A, B, c), orient2d_sign(B, c, A));
    }

    #[test]
    fn orient2d_degenerate_near_collinear() {
        // Classic filter-breaking case: points on a line y = x with tiny
        // perturbation below representability of the naive determinant.
        let a = Point2::new(12.0, 12.0);
        let b = Point2::new(24.0, 24.0);
        for i in 0..64 {
            let x = 0.5 + (i as f64) * f64::EPSILON;
            let c = Point2::new(x, x);
            assert_eq!(orient2d(a, b, c), Orientation::Collinear, "i={i}");
            let c_up = Point2::new(x, x + x * f64::EPSILON);
            assert_eq!(orient2d_sign(a, b, c_up), 1, "i={i}");
            let c_dn = Point2::new(x, x - x * f64::EPSILON);
            assert_eq!(orient2d_sign(a, b, c_dn), -1, "i={i}");
        }
    }

    #[test]
    fn orient2d_filter_agrees_with_exact_randomly() {
        let mut s = 0x1234_5678_u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 100.0 - 50.0
        };
        for _ in 0..2000 {
            let a = Point2::new(next(), next());
            let b = Point2::new(next(), next());
            let c = Point2::new(next(), next());
            assert_eq!(orient2d_sign(a, b, c), orient2d_exact(a, b, c));
        }
    }

    #[test]
    fn orient3d_basic() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(1.0, 0.0, 0.0);
        let c = Point3::new(0.0, 1.0, 0.0);
        // orient3d(a,b,c,d) > 0 iff d below plane (a,b,c CCW from above)
        assert_eq!(orient3d_sign(a, b, c, Point3::new(0.0, 0.0, -1.0)), 1);
        assert_eq!(orient3d_sign(a, b, c, Point3::new(0.0, 0.0, 1.0)), -1);
        assert_eq!(orient3d_sign(a, b, c, Point3::new(5.0, 5.0, 0.0)), 0);
    }

    #[test]
    fn orient3d_degenerate_coplanar() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(1.0, 1.0, 1.0);
        let c = Point3::new(2.0, 4.0, 8.0);
        // d in the plane spanned by b and c (linear combination)
        let d = Point3::new(3.0, 5.0, 9.0); // b + c
        assert_eq!(orient3d_sign(a, b, c, d), 0);
        // tiny z-perturbations flip the sign deterministically
        let dup = Point3::new(3.0, 5.0, 9.0 + 9.0 * f64::EPSILON);
        let ddn = Point3::new(3.0, 5.0, 9.0 - 9.0 * f64::EPSILON);
        assert_ne!(orient3d_sign(a, b, c, dup), 0);
        assert_eq!(orient3d_sign(a, b, c, dup), -orient3d_sign(a, b, c, ddn));
    }

    #[test]
    fn above_below_helpers() {
        assert!(strictly_above(A, B, Point2::new(0.5, 0.1)));
        assert!(!strictly_above(A, B, Point2::new(0.5, 0.0)));
        assert!(on_or_below(A, B, Point2::new(0.5, 0.0)));
        assert!(on_or_below(A, B, Point2::new(0.5, -2.0)));
        assert!(!on_or_below(A, B, Point2::new(0.5, 0.2)));
    }
}
