//! Plain value types for points in ℝ² and ℝ³.

use std::cmp::Ordering;

/// A point in the plane.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point2 {
    /// x-coordinate.
    pub x: f64,
    /// y-coordinate.
    pub y: f64,
}

impl Point2 {
    /// Construct a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Lexicographic (x, then y) comparison — the sort order the paper's
    /// presorted algorithms assume ("sorted in increasing order of
    /// x-coordinates"; ties broken by y so the order is total).
    #[inline]
    pub fn cmp_xy(&self, other: &Self) -> Ordering {
        match self.x.partial_cmp(&other.x) {
            Some(Ordering::Equal) | None => self.y.partial_cmp(&other.y).unwrap_or(Ordering::Equal),
            Some(o) => o,
        }
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(&self, other: &Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// A point in 3-space.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point3 {
    /// x-coordinate.
    pub x: f64,
    /// y-coordinate.
    pub y: f64,
    /// z-coordinate.
    pub z: f64,
}

impl Point3 {
    /// Construct a point.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Drop the z-coordinate.
    #[inline]
    pub fn xy(&self) -> Point2 {
        Point2::new(self.x, self.y)
    }
}

/// Sort points lexicographically by (x, y), returning the permutation of
/// indices (the points themselves are never reordered — the in-place
/// discipline of the paper: algorithms work on ids over a fixed array).
pub fn argsort_xy(points: &[Point2]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| points[a].cmp_xy(&points[b]));
    idx
}

/// Return the points permuted into (x, y) order — used where an algorithm's
/// contract is "presorted input".
pub fn sorted_by_x(points: &[Point2]) -> Vec<Point2> {
    let mut v = points.to_vec();
    v.sort_by(Point2::cmp_xy);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_xy_total_order() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(1.0, 3.0);
        let c = Point2::new(2.0, 0.0);
        assert_eq!(a.cmp_xy(&b), Ordering::Less);
        assert_eq!(b.cmp_xy(&c), Ordering::Less);
        assert_eq!(a.cmp_xy(&a), Ordering::Equal);
        assert_eq!(c.cmp_xy(&a), Ordering::Greater);
    }

    #[test]
    fn argsort_leaves_input_alone() {
        let pts = vec![
            Point2::new(3.0, 0.0),
            Point2::new(1.0, 5.0),
            Point2::new(1.0, 2.0),
        ];
        let order = argsort_xy(&pts);
        assert_eq!(order, vec![2, 1, 0]);
        assert_eq!(pts[0], Point2::new(3.0, 0.0)); // untouched
        let sorted = sorted_by_x(&pts);
        assert_eq!(sorted[0], Point2::new(1.0, 2.0));
        assert_eq!(sorted[2], Point2::new(3.0, 0.0));
    }

    #[test]
    fn dist2_basic() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist2(&b), 25.0);
    }

    #[test]
    fn point3_projection() {
        let p = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(p.xy(), Point2::new(1.0, 2.0));
    }
}
