//! Structure-of-arrays point layout for the data-parallel kernel hot paths.
//!
//! The simulator's fused kernels (`ipch_pram::kernel`) execute their inner
//! loops over contiguous chunks; whether those loops actually vectorize
//! depends on what the per-element closure touches. Indexing an
//! array-of-structs `&[Point2]` loads 16-byte structs at stride 2 and then
//! throws half of each load away, and recomputing an order-isomorphic
//! integer key from raw `f64` bits on every element puts bit-twiddling in
//! the hot loop. This module provides the two standard fixes:
//!
//! * [`PointsSoA`] — the same points as two contiguous `f64` columns, so a
//!   closure that only needs `x` streams a dense column.
//! * [`f64_key`] / [`f64_from_key`] — the order-isomorphic f64 ↔ i64
//!   mapping, plus [`PointsSoA::x_keys`] to hoist the key computation out
//!   of kernel closures entirely: precompute the column once, then reduce
//!   over plain `i64` loads. Because the mapping is bijective on bit
//!   patterns, a reduced key converts back to the *bit-identical* float via
//!   [`f64_from_key`] — no host-side rescan needed to recover the witness
//!   value.
//!
//! The key mapping is the canonical definition for the whole workspace
//! (`ipch_lp::constraint::f64_key` delegates here).

use crate::point::{Point2, Point3};

/// Order-isomorphic mapping f64 → i64 (total order on finite floats),
/// letting PRAM Combining-Min/Max steps minimize or maximize real-valued
/// keys exactly. Injective on bit patterns (`-0.0` and `0.0` map to
/// distinct adjacent keys), inverted by [`f64_from_key`].
#[inline]
pub fn f64_key(v: f64) -> i64 {
    let b = v.to_bits() as i64;
    b ^ (((b >> 63) as u64) >> 1) as i64
}

/// Inverse of [`f64_key`]: recovers the bit-identical `f64` a key was
/// derived from. The transform is an involution on the sign-preserved
/// encoding, so decoding is the same xor-fold keyed on the *key's* sign.
#[inline]
pub fn f64_from_key(k: i64) -> f64 {
    f64::from_bits((k ^ (((k >> 63) as u64) >> 1) as i64) as u64)
}

/// Points in structure-of-arrays layout: two contiguous `f64` columns.
///
/// Built once per problem instance from the (never reordered) input slice;
/// kernel closures index the column they need instead of gathering through
/// `Point2` structs.
///
/// # Examples
///
/// ```
/// use ipch_geom::soa::{f64_from_key, PointsSoA};
/// use ipch_geom::Point2;
///
/// let pts = vec![Point2 { x: 3.0, y: 1.0 }, Point2 { x: -2.0, y: 4.0 }];
/// let soa = PointsSoA::from_points(&pts);
/// assert_eq!(soa.xs(), &[3.0, -2.0]);
/// assert_eq!(soa.ys(), &[1.0, 4.0]);
/// let keys = soa.x_keys();
/// let max_key = *keys.iter().max().unwrap();
/// assert_eq!(f64_from_key(max_key), 3.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PointsSoA {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PointsSoA {
    /// Transpose an AoS slice into columns. O(n), done once per instance.
    pub fn from_points(points: &[Point2]) -> Self {
        Self {
            xs: points.iter().map(|p| p.x).collect(),
            ys: points.iter().map(|p| p.y).collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The x column.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y column.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Precompute the order-isomorphic key of every x coordinate
    /// ([`f64_key`] hoisted out of the kernel closure into one dense pass).
    pub fn x_keys(&self) -> Vec<i64> {
        self.xs.iter().map(|&x| f64_key(x)).collect()
    }

    /// Precompute the order-isomorphic key of every y coordinate.
    pub fn y_keys(&self) -> Vec<i64> {
        self.ys.iter().map(|&y| f64_key(y)).collect()
    }
}

/// One-shot key column straight from an AoS slice, for call sites that
/// only need the keys and not the transposed coordinates.
pub fn x_keys(points: &[Point2]) -> Vec<i64> {
    points.iter().map(|p| f64_key(p.x)).collect()
}

/// 3-D points in structure-of-arrays layout: three contiguous `f64`
/// columns. Built once per problem instance; per-coordinate hot loops
/// (quadrant classification, axis reductions) stream the column they need
/// instead of gathering 24-byte `Point3` structs.
#[derive(Clone, Debug, Default)]
pub struct Points3SoA {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
}

impl Points3SoA {
    /// Transpose an AoS slice into columns. O(n), done once per instance.
    pub fn from_points(points: &[Point3]) -> Self {
        Self {
            xs: points.iter().map(|p| p.x).collect(),
            ys: points.iter().map(|p| p.y).collect(),
            zs: points.iter().map(|p| p.z).collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The x column.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y column.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The z column.
    #[inline]
    pub fn zs(&self) -> &[f64] {
        &self.zs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_key_monotone_and_invertible() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                f64_key(w[0]) < f64_key(w[1]),
                "keys must be strictly increasing: {} vs {}",
                w[0],
                w[1]
            );
        }
        for &v in &vals {
            let back = f64_from_key(f64_key(v));
            assert_eq!(back.to_bits(), v.to_bits(), "roundtrip of {v}");
        }
    }

    #[test]
    fn soa3_columns_match_aos() {
        let pts: Vec<Point3> = (0..31)
            .map(|i| Point3 {
                x: i as f64,
                y: (i * 2) as f64,
                z: (i * 3) as f64 - 10.0,
            })
            .collect();
        let soa = Points3SoA::from_points(&pts);
        assert_eq!(soa.len(), pts.len());
        assert!(!soa.is_empty());
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(soa.xs()[i], p.x);
            assert_eq!(soa.ys()[i], p.y);
            assert_eq!(soa.zs()[i], p.z);
        }
    }

    #[test]
    fn soa_columns_match_aos() {
        let pts: Vec<Point2> = (0..97)
            .map(|i| Point2 {
                x: (i as f64) * 1.5 - 40.0,
                y: ((i * i) % 13) as f64,
            })
            .collect();
        let soa = PointsSoA::from_points(&pts);
        assert_eq!(soa.len(), pts.len());
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(soa.xs()[i], p.x);
            assert_eq!(soa.ys()[i], p.y);
        }
        let keys = soa.x_keys();
        assert_eq!(keys, x_keys(&pts));
        // the max key decodes to the max x
        let max_x = pts.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(f64_from_key(*keys.iter().max().unwrap()), max_x);
    }
}
