//! The presorted algorithms: O(1)-time hull (Lemma 2.5) and the log*-time
//! optimal algorithm (Theorem 2), plus Lemma-7 processor scheduling.
//!
//! ```text
//! cargo run --release -p ipch-bench --example presorted_pram
//! ```

use ipch_geom::generators::uniform_disk;
use ipch_geom::point::sorted_by_x;
use ipch_hull2d::parallel::logstar::{upper_hull_logstar, LogstarParams};
use ipch_hull2d::parallel::presorted::{upper_hull_presorted, PresortedParams};
use ipch_pram::{schedule, Machine, Shm};

fn main() {
    for n in [1024usize, 4096, 16384] {
        let pts = sorted_by_x(&uniform_disk(n, 5));

        let mut m1 = Machine::new(1);
        let mut s1 = Shm::new();
        let (o1, rep) = upper_hull_presorted(&mut m1, &mut s1, &pts, &PresortedParams::default());

        let mut m2 = Machine::new(2);
        let mut s2 = Shm::new();
        let (o2, lrep) =
            upper_hull_logstar(&mut m2, &mut s2, &pts, &LogstarParams::default()).unwrap();
        assert_eq!(o1.hull, o2.hull);

        println!("n = {n}   (hull edges: {})", o1.hull.num_edges());
        println!(
            "  O(1)-time  : {:>4} steps, work/(n log n) = {:.1}, {} randomized nodes, {} swept",
            m1.metrics.total_steps(),
            m1.metrics.total_work() as f64 / (n as f64 * (n as f64).log2()),
            rep.randomized_nodes,
            rep.swept_failures,
        );
        println!(
            "  log*-time  : {:>4} steps, depth {}, work/n = {:.1}",
            m2.metrics.total_steps(),
            lrep.depth,
            m2.metrics.total_work() as f64 / n as f64,
        );
        // Lemma 7: what does the log* run cost on p = n / log* n processors?
        let p = (n / 3).max(1) as u64;
        let c = schedule::simulate_with_p(&m2.metrics, p, schedule::DEFAULT_TC);
        println!(
            "  Lemma 7    : on p = n/log*n = {p} processors, T = {:.0}\n",
            c.time
        );
    }
}
