//! Quickstart: find the upper hull of unsorted points with the paper's
//! Theorem-5 algorithm and inspect the PRAM cost of doing so.
//!
//! ```text
//! cargo run --release -p ipch-bench --example quickstart
//! ```

use ipch_geom::generators::circle_plus_interior;
use ipch_hull2d::parallel::unsorted::{upper_hull_unsorted, UnsortedParams};
use ipch_hull2d::verify_upper_hull;
use ipch_pram::{Machine, Shm};

fn main() {
    // 10 000 unsorted points whose convex hull has exactly 24 vertices.
    let points = circle_plus_interior(24, 10_000, 42);

    // A randomized CRCW PRAM with a fixed seed (runs replay exactly).
    let mut machine = Machine::new(7);
    let mut shm = Shm::new();

    let (out, trace) =
        upper_hull_unsorted(&mut machine, &mut shm, &points, &UnsortedParams::default());

    println!("n = {}", points.len());
    println!("upper hull vertices: {:?}", out.hull.vertices);
    println!("hull edges h = {}", out.hull.num_edges());
    verify_upper_hull(&points, &out.hull).expect("hull verifies");
    out.verify_pointers(&points)
        .expect("every point knows its edge");

    let m = &machine.metrics;
    println!("\nPRAM cost of the run:");
    println!("  time   (steps): {}", m.total_steps());
    println!("  work           : {}", m.total_work());
    println!(
        "  work / n       : {:.1}",
        m.total_work() as f64 / points.len() as f64
    );
    println!("  peak processors: {}", m.peak_processors);
    println!(
        "\nrecursion: {} levels, {} phases, fallback = {}",
        trace.levels.len(),
        trace.phases,
        trace.fallback
    );
    println!("first point's covering edge: {:?}", out.edge_above[0]);
}
