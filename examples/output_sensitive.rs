//! Output sensitivity in action: the same n with different hull sizes h.
//!
//! The paper's Theorem 5 bounds the work by O(n log h) — the knob that
//! matters is the *output*, not the input. This example sweeps h at fixed
//! n and prints the measured PRAM work next to the sequential baselines'
//! operation counts (Kirkpatrick–Seidel O(n log h) vs Jarvis O(n·h) vs
//! plain O(n log n) monotone chain).
//!
//! ```text
//! cargo run --release -p ipch-bench --example output_sensitive
//! ```

use ipch_geom::generators::circle_plus_interior;
use ipch_hull2d::parallel::unsorted::{upper_hull_unsorted, UnsortedParams};
use ipch_hull2d::seq::{jarvis, ks, monotone, SeqStats};
use ipch_pram::{Machine, Shm};

fn main() {
    let n = 8192;
    println!("n = {n}\n");
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>10}",
        "h", "PRAM work", "KS ops", "Jarvis", "Monotone"
    );
    for h in [8usize, 32, 128, 512] {
        let pts = circle_plus_interior(h, n, 1);

        let mut machine = Machine::new(3);
        let mut shm = Shm::new();
        let (out, _) =
            upper_hull_unsorted(&mut machine, &mut shm, &pts, &UnsortedParams::default());
        assert_eq!(
            out.hull.num_edges() + 1,
            ipch_geom::hull_chain::upper_hull_indices(&pts).len()
        );

        let ops = |f: fn(&[ipch_geom::Point2], &mut SeqStats) -> ipch_geom::UpperHull| {
            let mut st = SeqStats::default();
            f(&pts, &mut st);
            st.total()
        };
        println!(
            "{:>6} {:>12} {:>10} {:>10} {:>10}",
            h,
            machine.metrics.total_work(),
            ops(ks::upper_hull),
            ops(jarvis::upper_hull),
            ops(monotone::upper_hull),
        );
    }
    println!("\nKS and the PRAM work grow with log h; Jarvis grows linearly in h;");
    println!("the monotone chain ignores h entirely (it always pays n log n).");
}
