//! 3-D upper hull with the Theorem-6 algorithm: probes, facets, and the
//! per-point face pointers.
//!
//! ```text
//! cargo run --release -p ipch-bench --example hull3d_demo
//! ```

use ipch_geom::gen3d::sphere_plus_interior;
use ipch_hull3d::parallel::unsorted3d::{upper_hull3_unsorted, Unsorted3Params};
use ipch_hull3d::verify_upper_hull3;
use ipch_pram::{Machine, Shm};

fn main() {
    // 2 000 points: 32 on the unit sphere (the hull), the rest well inside.
    let points = sphere_plus_interior(32, 2000, 9);

    let mut machine = Machine::new(11);
    let mut shm = Shm::new();
    let (out, trace) =
        upper_hull3_unsorted(&mut machine, &mut shm, &points, &Unsorted3Params::default());

    verify_upper_hull3(&points, &out.facets, false).expect("facets verify");
    println!("n = {}", points.len());
    println!("upper-hull facets: {}", out.facets.len());
    println!(
        "probes: {} (+{} backstop), fallback = {}",
        trace.probe_facets, trace.backstop_probes, trace.fallback
    );
    println!("levels: {}", trace.levels.len());

    let m = &machine.metrics;
    println!(
        "\nPRAM cost: {} steps, {} work ({:.1} per point)",
        m.total_steps(),
        m.total_work(),
        m.total_work() as f64 / points.len() as f64
    );

    // the paper's output convention: every point knows the face above it
    let p0 = points[0];
    let f = out.facets[out.face_above[0]];
    println!(
        "\npoint 0 at ({:.2}, {:.2}, {:.2}) sits under facet {:?}",
        p0.x,
        p0.y,
        p0.z,
        f.ids()
    );
}
