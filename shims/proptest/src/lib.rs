//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, range strategies over the primitive numeric types, tuple
//! strategies, `collection::{vec, btree_set}`, `prop_assert!` /
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (derived from the test name, so failures replay), and
//! there is **no shrinking** — a failing case reports the generated inputs
//! verbatim. That is a weaker debugging experience but identical assertion
//! power.

pub mod test_runner {
    //! Config, error type and the case RNG.

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed property case (carries the formatted assertion message).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic case RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded from a test's name, so every run replays identically.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128).wrapping_mul(bound as u128);
                let lo = m as u64;
                if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy generating a fixed value (proptest's `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = if span > u64::MAX as u128 {
                        rng.next_u64() as u128
                    } else {
                        rng.below(span as u64) as u128
                    };
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = if span > u64::MAX as u128 {
                        rng.next_u64() as u128
                    } else {
                        rng.below(span as u64) as u128
                    };
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A 0, B 1),
        (A 0, B 1, C 2),
        (A 0, B 1, C 2, D 3),
        (A 0, B 1, C 2, D 3, E 4)
    );
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size range for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi_excl - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with size drawn from `size`.
    ///
    /// Element collisions are retried a bounded number of times, like the
    /// real proptest; if the element domain is too small the set may come
    /// out smaller than the drawn target.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(16) + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} — {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a test running `cases` random cases of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let described = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "property failed at case {}/{}:\n{}\ninputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        described
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = i64> {
        (-8i64..8).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mapped_values_in_range(v in small(), w in 0u64..5) {
            prop_assert!(v % 2 == 0);
            prop_assert!((-16..16).contains(&v));
            prop_assert!(w < 5, "w = {}", w);
        }

        #[test]
        fn collections_respect_sizes(
            xs in crate::collection::vec(0i32..100, 3..7),
            set in crate::collection::btree_set(0usize..1000, 0..5),
        ) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
            prop_assert!(set.len() < 5);
            prop_assert!(xs.iter().all(|&x| (0..100).contains(&x)));
        }

        #[test]
        fn tuples_and_floats(p in (0.25f64..0.75, 1i32..10)) {
            prop_assert!(p.0 >= 0.25 && p.0 < 0.75);
            prop_assert_ne!(p.1, 0);
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let mut c = crate::test_runner::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
