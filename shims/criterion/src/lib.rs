//! Offline shim for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple median-of-samples wall-clock timer instead
//! of criterion's statistical machinery.
//!
//! Each benchmark prints one line:
//!
//! ```text
//! group/name/param    median 12.345 µs/iter   (10 samples x 8 iters)  81.0 Melem/s
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `function_name/parameter` for parameterised benches.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    pub last_median: Duration,
    /// Iterations per sample chosen by the calibrator (after `iter`).
    pub last_iters: u64,
}

impl Bencher {
    /// Measure `f`, recording the median per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up and per-sample iteration-count calibration: target
        // ~2 ms per sample, at least one iteration
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed() / iters as u32);
        }
        per_iter.sort_unstable();
        self.last_median = per_iter[per_iter.len() / 2];
        self.last_iters = iters;
    }
}

/// Formats a duration compactly (ns/µs/ms/s).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(count: u64, per: Duration, unit: &str) -> String {
    let per_s = count as f64 / per.as_secs_f64();
    if per_s >= 1e9 {
        format!("{:.2} G{unit}/s", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.2} M{unit}/s", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.2} k{unit}/s", per_s / 1e3)
    } else {
        format!("{per_s:.2} {unit}/s")
    }
}

/// One measured result, also exposed so harnesses can persist results.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Full `group/bench/param` id.
    pub id: String,
    /// Median wall-clock time per iteration.
    pub median: Duration,
    /// Throughput annotation active when measured, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Elements-per-second implied by the throughput annotation.
    pub fn elements_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) => Some(n as f64 / self.median.as_secs_f64()),
            _ => None,
        }
    }
}

/// The top-level harness object.
pub struct Criterion {
    sample_size: usize,
    /// Every measurement taken through this harness, in execution order.
    pub measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmark a closure under a bare name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let sample_size = self.sample_size;
        run_one(self, None, &id.id, sample_size, None, f);
    }
}

/// A group of related benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let group = self.name.clone();
        let throughput = self.throughput;
        run_one(self.parent, Some(&group), &id.id, samples, throughput, f);
    }

    /// Benchmark a closure against a shared input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Close the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    parent: &mut Criterion,
    group: Option<&str>,
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher {
        samples,
        last_median: Duration::ZERO,
        last_iters: 0,
    };
    f(&mut b);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {}", fmt_rate(n, b.last_median, "elem")),
        Some(Throughput::Bytes(n)) => format!("  {}", fmt_rate(n, b.last_median, "B")),
        None => String::new(),
    };
    println!(
        "{full:<48} median {:>12}/iter   ({} samples x {} iters){rate}",
        fmt_duration(b.last_median),
        samples,
        b.last_iters,
    );
    parent.measurements.push(Measurement {
        id: full,
        median: b.last_median,
        throughput,
    });
}

/// Declare a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs bench binaries with `--test`; a
            // full measurement run there would be slow noise, so bail out.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1000));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.measurements.len(), 2);
        assert_eq!(c.measurements[0].id, "g/noop");
        assert_eq!(c.measurements[1].id, "g/sum/64");
        assert!(c.measurements[0].elements_per_sec().unwrap() > 0.0);
    }
}
