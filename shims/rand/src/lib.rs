//! Offline shim for the `rand` crate (0.9-style API surface).
//!
//! This workspace builds in environments with no network and no registry
//! cache, so the external crates it depends on are vendored as minimal
//! shims. This one provides exactly what the workspace uses:
//!
//! * `rand::rngs::StdRng` with `SeedableRng::seed_from_u64`
//! * `Rng::random::<f64>()` / `Rng::random::<u64>()` / `Rng::random::<bool>()`
//! * `Rng::random_range(a..b)` / `Rng::random_range(a..=b)` for the integer
//!   types the generators sample
//!
//! The generator is SplitMix64 (not ChaCha12 like the real `StdRng`), so
//! streams differ from upstream `rand` for the same seed — but they are
//! deterministic, seedable, and statistically sound for workload generation,
//! which is all the workspace requires.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly over their whole domain via [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly sampleable from a range (Lemire rejection).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// One past `self`, for converting exclusive bounds; panics on overflow.
    fn prev(self) -> Self;
}

/// Exactly uniform draw from `[0, bound)` via Lemire's multiply-shift.
fn next_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // full-width domain: any 64-bit draw is uniform
                    return rng.next_u64() as $t;
                }
                let off = next_below(rng, span as u64) as i128;
                (lo as i128 + off) as $t
            }

            fn prev(self) -> Self {
                self.checked_sub(1).expect("random_range: empty range")
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "random_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }

    fn prev(self) -> Self {
        // exclusive float upper bounds behave like inclusive-minus-epsilon;
        // the uniform draw in [0,1) already excludes `hi` almost surely.
        self
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Inclusive `(lo, hi)` bounds.
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, self.end.prev())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        self.into_inner()
    }
}

/// High-level sampling interface, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw over the whole domain of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        let (lo, hi) = range.bounds();
        T::sample_inclusive(self, lo, hi)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    #[inline]
    fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(GOLDEN_GAMMA);
            mix64(self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // pre-mix so nearby seeds give unrelated streams
            Self {
                state: mix64(seed ^ GOLDEN_GAMMA),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_replay() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut r = StdRng::seed_from_u64(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.random_range(-3i32..3);
            assert!((-3..3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
        for _ in 0..100 {
            let v = r.random_range(0usize..=4);
            assert!(v <= 4);
        }
        assert_eq!(r.random_range(5u64..6), 5);
        assert_eq!(r.random_range(9usize..=9), 9);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.random_range(0usize..8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
    }
}
